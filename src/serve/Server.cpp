//===- serve/Server.cpp - Fault-tolerant analysis daemon ------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "gen/Digest.h"
#include "support/FaultInjector.h"
#include "support/Json.h"

#include <cerrno>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cpsflow;
using namespace cpsflow::serve;

namespace {

/// Microseconds elapsed since \p T0, clamped non-negative.
double usSince(std::chrono::steady_clock::time_point T0) {
  double Us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  return Us < 0 ? 0 : Us;
}

} // namespace

/// One client connection. The fd is shared by the reader (recv) and any
/// worker holding a queued job for it (send); the last owner's
/// destructor closes it, so responses already queued when the client
/// stops sending still go out before the close.
struct Server::Connection {
  explicit Connection(int Fd) : Fd(Fd) {}
  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  int Fd;
  std::mutex WriteMu; ///< responses from concurrent workers interleave
                      ///< by whole lines, never by bytes
  std::atomic<bool> WriteDead{false};
};

Server::Server(ServeOptions Opts)
    : Opts(std::move(Opts)),
      Interrupt(std::make_shared<support::CancelToken>()) {
  if (this->Opts.Workers == 0)
    this->Opts.Workers = 1;
  this->Opts.Defaults.Interrupt = Interrupt;
  this->Opts.Defaults.Memo = this->Opts.Incremental ? &Memo : nullptr;
}

Server::~Server() {
  if (Started && !Drained) {
    requestDrain();
    waitDrained();
  }
}

Result<bool> Server::start() {
  if (!Opts.CacheDir.empty()) {
    Cache = std::make_unique<ResultCache>(Opts.CacheDir);
    if (!Cache->ok())
      return Error("cannot create cache directory '" + Opts.CacheDir + "'");
  }

  if (!Opts.LogPath.empty()) {
    Log = std::make_unique<RequestLog>(Opts.LogPath, Opts.LogRotateBytes);
    if (!Log->ok())
      return Error("cannot open request log '" + Opts.LogPath + "'");
  }
  if (Opts.FlightRecords > 0) {
    Flight = std::make_unique<FlightRecorder>(Opts.FlightRecords);
    if (Opts.FlightDumpPath.empty())
      Opts.FlightDumpPath = Opts.SocketPath + ".flight.json";
  }
  if (Opts.TraceSlowMs > 0 && Opts.TraceDir.empty())
    Opts.TraceDir = Opts.SocketPath + ".traces";

  // Pre-declare the full counter vocabulary so the very first scrape
  // already carries every series at zero — dashboards and the
  // counter-consistency invariant never have to special-case "absent".
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    for (const char *Name :
         {"serve.requests", "serve.analyze.admitted",
          "serve.analyze.responded", "serve.analyze.failed", "serve.shed",
          "serve.ok", "serve.cached", "serve.degraded",
          "serve.memo.warmRuns", "serve.memo.replayHits",
          "serve.memo.replayMisses", "serve.trace.captured",
          "serve.trace.dropped"})
      Metrics.add(Name, 0);
    for (ServeErrorKind K :
         {ServeErrorKind::Parse, ServeErrorKind::Cps,
          ServeErrorKind::Deadline, ServeErrorKind::Memory,
          ServeErrorKind::Internal, ServeErrorKind::Shed,
          ServeErrorKind::Protocol})
      Metrics.add(std::string("serve.error.") + str(K), 0);
    Metrics.histogram("serve.latencyUs");
  }

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Error("socket path '" + Opts.SocketPath +
                 "' is empty or too long for AF_UNIX");
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Error(std::string("socket: ") + std::strerror(errno));
  // A stale socket file from a previous (possibly crashed) daemon blocks
  // bind; removing it is safe because the path is ours by contract.
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0) {
    Error E(std::string("bind '") + Opts.SocketPath +
            "': " + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }
  if (::listen(ListenFd, 128) < 0) {
    Error E(std::string("listen: ") + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }

  Started = true;
  if (Opts.TraceSlowMs > 0)
    for (unsigned I = 0; I < Opts.Workers; ++I)
      WorkerTracers.emplace_back();
  for (unsigned I = 0; I < Opts.Workers; ++I)
    WorkerThreads.emplace_back([this, I] { workerLoop(I); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestDrain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return;

  // First thing at drain start, before any in-flight work finishes:
  // publish the flight-recorder frame. A post-mortem of a SIGTERM'd
  // daemon then names exactly the requests that were in flight when the
  // signal landed, not the empty ring a post-drain dump would show.
  if (Flight && !Opts.FlightDumpPath.empty())
    Flight->dumpTo(Opts.FlightDumpPath);

  // Wake accept() and stop admission at the socket layer. The fd itself
  // stays open until waitDrained so its number cannot be reused mid-run.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);

  // Stop reading every live connection; pending responses still flow.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::weak_ptr<Connection> &W : Conns)
      if (std::shared_ptr<Connection> C = W.lock())
        ::shutdown(C->Fd, SHUT_RD);
  }

  // After the grace period, anything still analyzing degrades through
  // the governor's interrupt probe (the Section 4.4 cut path) rather
  // than holding up shutdown indefinitely.
  std::lock_guard<std::mutex> Lock(GraceMu);
  GraceThread = std::thread([this] {
    std::unique_lock<std::mutex> L(GraceMu);
    bool Finished = GraceCv.wait_for(
        L,
        std::chrono::duration<double, std::milli>(
            Opts.DrainGraceMs > 0 ? Opts.DrainGraceMs : 0.0),
        [this] { return GraceDone; });
    if (!Finished)
      Interrupt->cancel();
  });
}

void Server::waitDrained() {
  if (!Started || Drained)
    return;
  requestDrain();

  if (AcceptThread.joinable())
    AcceptThread.join();

  // No new readers can appear once the accept thread is gone.
  std::vector<std::thread> R;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    R.swap(Readers);
  }
  for (std::thread &T : R)
    T.join();

  // Readers are gone, so the queue only shrinks from here: tell the
  // workers to exit once they have answered everything still queued.
  {
    std::lock_guard<std::mutex> Lock(QMu);
    QStopping = true;
  }
  QCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();

  {
    std::lock_guard<std::mutex> Lock(GraceMu);
    GraceDone = true;
  }
  GraceCv.notify_all();
  if (GraceThread.joinable())
    GraceThread.join();

  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Opts.SocketPath.c_str());
  Drained = true;
}

size_t Server::inFlight() const {
  std::lock_guard<std::mutex> Lock(QMu);
  return Queue.size() + Executing;
}

void Server::acceptLoop() {
  for (;;) {
    // Poll with a timeout so drain is observed even if the shutdown()
    // wakeup is missed (portability belt-and-braces).
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, 100);
    if (Draining.load())
      return;
    if (N <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      return; // listen socket is gone
    }
    auto C = std::make_shared<Connection>(Fd);
    std::lock_guard<std::mutex> Lock(ConnMu);
    if (Draining.load()) {
      // Lost the race with requestDrain's connection sweep; this
      // connection was never registered, so close it unserved.
      continue;
    }
    Conns.push_back(C);
    Readers.emplace_back([this, C] { readerLoop(C); });
  }
}

void Server::readerLoop(std::shared_ptr<Connection> C) {
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    pollfd P{C->Fd, POLLIN, 0};
    int N = ::poll(&P, 1, 100);
    if (Draining.load())
      return;
    if (N <= 0)
      continue;
    ssize_t Got = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
    if (Got == 0)
      return; // client closed (or SHUT_RD)
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    Buf.append(Chunk, static_cast<size_t>(Got));

    size_t Start = 0;
    for (size_t Nl; (Nl = Buf.find('\n', Start)) != std::string::npos;
         Start = Nl + 1) {
      std::string Line = Buf.substr(Start, Nl - Start);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        handleLine(C, Line);
    }
    Buf.erase(0, Start);

    if (Buf.size() > MaxRequestBytes) {
      // Framing is lost — there is no way to know where this client's
      // next request begins. Report once, then stop reading.
      countError(ServeErrorKind::Protocol);
      writeLine(*C, errorResponse(nullptr, ServeErrorKind::Protocol,
                                  "request line exceeds " +
                                      std::to_string(MaxRequestBytes) +
                                      " bytes"));
      return;
    }
  }
}

void Server::handleLine(const std::shared_ptr<Connection> &C,
                        const std::string &Line) {
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Metrics.add("serve.requests", 1);
  }

  Result<ServeRequest> Req = parseServeRequest(Line);
  if (!Req) {
    countError(ServeErrorKind::Protocol);
    writeLine(*C, errorResponse(nullptr, ServeErrorKind::Protocol,
                                Req.error().str()));
    return;
  }

  switch (Req->Kind) {
  case ServeRequest::Op::Health:
    writeLine(*C, healthJson(*Req));
    return;
  case ServeRequest::Op::Stats:
    writeLine(*C, statsJson(*Req));
    return;
  case ServeRequest::Op::Shutdown: {
    JsonWriter W;
    W.beginObject();
    W.key("ok").value(true);
    if (Req->HasId)
      W.key("id").value(Req->Id);
    W.key("draining").value(true);
    W.endObject();
    writeLine(*C, W.str());
    requestDrain();
    return;
  }
  case ServeRequest::Op::Metrics:
    writeLine(*C, metricsResponse(*Req));
    return;
  case ServeRequest::Op::Dump:
    writeLine(*C, dumpResponse(*Req));
    return;
  case ServeRequest::Op::Analyze:
    break;
  }

  // Every well-formed analyze line is "admitted" for accounting the
  // moment it parses — sheds included — so the exposition invariant
  // admitted == responded + shed + failed closes over every fate a
  // request can meet. The record minted here rides the job to its
  // terminal bookkeeping (finishRecord).
  RequestRecord Rec;
  Rec.ReqId = NextOrdinal.fetch_add(1) + 1;
  Rec.ClientId = Req->Id;
  Rec.HasClientId = Req->HasId;
  Rec.Analyzer = Req->Analyzer;
  Rec.Domain = Req->Domain;
  Rec.SourceLen = Req->Program.size();
  Rec.SourceDigest = gen::textDigest(Req->Program);
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Metrics.add("serve.analyze.admitted", 1);
  }
  // Recorder admission strictly precedes the queue push: once a worker
  // can see the job, its complete() must find the in-flight entry.
  if (Flight)
    Flight->admit(Rec);

  // Admission control: a full queue sheds immediately instead of letting
  // latency (and client timeouts) grow without bound.
  bool Admitted = false;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    if (!QStopping && !Draining.load() && Queue.size() < Opts.QueueCap) {
      Queue.push_back(Job{C, std::move(*Req),
                          std::chrono::steady_clock::now(), Rec});
      Admitted = true;
    }
  }
  if (Admitted) {
    QCv.notify_one();
    return;
  }
  Rec.Outcome = "shed";
  Rec.ErrorKind = "shed";
  finishRecord(Rec);
  writeLine(*C, errorResponse(&*Req, ServeErrorKind::Shed,
                              Draining.load()
                                  ? "server is draining"
                                  : "server is overloaded, try again"));
}

void Server::workerLoop(unsigned WorkerId) {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QMu);
      QCv.wait(Lock, [this] { return QStopping || !Queue.empty(); });
      if (Queue.empty())
        return; // QStopping and nothing left to answer
      J = std::move(Queue.front());
      Queue.pop_front();
      ++Executing;
    }
    processJob(std::move(J), WorkerId);
    {
      std::lock_guard<std::mutex> Lock(QMu);
      --Executing;
    }
  }
}

void Server::processJob(Job J, unsigned WorkerId) {
  const uint64_t Ordinal = J.Rec.ReqId;
  J.Rec.Worker = WorkerId;
  J.Rec.QueueUs = usSince(J.Enqueued);
  std::string Resp;
  // Last line of containment: handleAnalyze contains analysis failures
  // itself, so this catches only handler-level faults (injected or
  // real) — the worker answers and survives regardless.
  try {
    CPSFLOW_FAULT_COUNTED(fault::Site::ServeHandler, Ordinal);
    Resp = handleAnalyze(J.Req, J.Rec, WorkerId);
  } catch (const std::bad_alloc &) {
    countError(ServeErrorKind::Memory);
    J.Rec.Outcome = "failed";
    J.Rec.ErrorKind = str(ServeErrorKind::Memory);
    Resp = errorResponse(&J.Req, ServeErrorKind::Memory,
                         "contained failure: out of memory");
  } catch (const std::exception &Ex) {
    countError(ServeErrorKind::Internal);
    J.Rec.Outcome = "failed";
    J.Rec.ErrorKind = str(ServeErrorKind::Internal);
    Resp = errorResponse(&J.Req, ServeErrorKind::Internal,
                         std::string("contained failure: ") + Ex.what());
  } catch (...) {
    countError(ServeErrorKind::Internal);
    J.Rec.Outcome = "failed";
    J.Rec.ErrorKind = str(ServeErrorKind::Internal);
    Resp = errorResponse(&J.Req, ServeErrorKind::Internal,
                         "contained failure: unknown exception");
  }
  J.Rec.TotalUs = usSince(J.Enqueued);
  finishRecord(J.Rec);
  writeLine(*J.Conn, Resp);
}

std::string Server::handleAnalyze(const ServeRequest &Req,
                                  RequestRecord &Rec, unsigned WorkerId) {
  const uint64_t Ordinal = Rec.ReqId;
  AnalyzeConfig Eff = Opts.Defaults;
  if (Req.MaxGoals)
    Eff.MaxGoals = Req.MaxGoals;
  if (Req.DeadlineMs >= 0)
    Eff.DeadlineMs = Req.DeadlineMs;

  CacheKey Key;
  Key.SourceDigest = gen::textDigest(Req.Program);
  Key.SourceDigest2 = gen::textDigest2(Req.Program);
  Key.SourceLen = Req.Program.size();
  Key.Analyzer = Req.Analyzer;
  Key.Domain = Req.Domain;
  Key.MaxGoals = Eff.MaxGoals;
  Key.LoopUnroll = Req.LoopUnroll;
  Key.DupBudget = Req.DupBudget;
  Key.UseSummaries = Req.UseSummaries;

  const bool UseCache = Cache && !Req.NoCache;
  Rec.CacheOutcome = Cache ? (Req.NoCache ? "bypass" : "miss") : "off";
  if (UseCache) {
    if (std::optional<std::string> Hit = Cache->lookup(Key)) {
      Rec.Outcome = "ok";
      Rec.CacheOutcome = "hit";
      std::lock_guard<std::mutex> Lock(MetricsMu);
      Metrics.add("serve.ok", 1);
      Metrics.add("serve.cached", 1);
      return analyzeResponse(Req, *Hit, /*Cached=*/true);
    }
  }

  // Slow-request capture: the worker's own tracer records this run's
  // phase spans and sampled goal instants; the events are spilled only
  // if the request turns out slow, and never touch the payload.
  support::Tracer *Tr = nullptr;
  if (Opts.TraceSlowMs > 0 && WorkerId < WorkerTracers.size()) {
    Tr = &WorkerTracers[WorkerId];
    Tr->clear();
    Eff.Trace = Tr;
    Eff.TraceTid = WorkerId;
  }

  auto TRun = std::chrono::steady_clock::now();
  AnalyzeOutcome Out = runServeAnalyze(Req, Eff, Ordinal);
  double RunMs = usSince(TRun) / 1000.0;

  Rec.Goals = Out.Goals;
  Rec.ReplayHits = Out.ReplayHits;
  Rec.ReplayMisses = Out.ReplayMisses;
  Rec.ParseUs = Out.ParseUs;
  Rec.CpsUs = Out.CpsUs;
  Rec.AnalyzeUs = Out.AnalyzeUs;

  if (Tr && RunMs > Opts.TraceSlowMs) {
    // Retroactive capture: the trace already exists in the worker's
    // tracer; a slow verdict just decides whether it is spilled. The
    // file budget (TraceSlowMax) bounds the disk this path can consume.
    uint64_t Seq = TraceFilesWritten.fetch_add(1);
    if (Seq < Opts.TraceSlowMax) {
      std::error_code Ec;
      std::filesystem::create_directories(Opts.TraceDir, Ec);
      std::string Path = Opts.TraceDir + "/req-" +
                         std::to_string(Rec.ReqId) + ".trace.json";
      std::ofstream TraceOut(Path, std::ios::binary | std::ios::trunc);
      std::string Doc = Tr->json();
      TraceOut.write(Doc.data(), static_cast<std::streamsize>(Doc.size()));
      TraceOut.flush();
      if (TraceOut) {
        Rec.SlowTracePath = Path;
        std::lock_guard<std::mutex> Lock(MetricsMu);
        Metrics.add("serve.trace.captured", 1);
      } else {
        std::lock_guard<std::mutex> Lock(MetricsMu);
        Metrics.add("serve.trace.dropped", 1);
      }
    } else {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      Metrics.add("serve.trace.dropped", 1);
    }
  }

  if (!Out.Ok) {
    Rec.Outcome = "failed";
    Rec.ErrorKind = str(Out.Kind);
    countError(Out.Kind);
    return errorResponse(&Req, Out.Kind, Out.Message);
  }
  Rec.Outcome = Out.Degraded ? "degraded" : "ok";
  Rec.DegradeReason = Out.DegradeReason;

  // Only complete (non-degraded) results are cached: a degraded answer
  // depends on wall-clock and ceilings that are not part of the key.
  // Warm (replay-assisted) payloads stay out too: their answer is
  // byte-identical to cold, but their stats block reflects the warm walk,
  // and the cache is byte-canonical per key.
  if (UseCache && !Out.Degraded && !Out.Incremental) {
    Cache->store(Key, Out.PayloadJson);
    Rec.CacheOutcome = "store";
  }
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Metrics.add("serve.ok", 1);
    if (Out.Degraded)
      Metrics.add("serve.degraded", 1);
    if (Out.Incremental)
      Metrics.add("serve.memo.warmRuns", 1);
    if (Out.ReplayHits)
      Metrics.add("serve.memo.replayHits", Out.ReplayHits);
    if (Out.ReplayMisses)
      Metrics.add("serve.memo.replayMisses", Out.ReplayMisses);
  }
  return analyzeResponse(Req, Out.PayloadJson, /*Cached=*/false);
}

std::string Server::healthJson(const ServeRequest &Req) {
  size_t Queued, Running;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    Queued = Queue.size();
    Running = Executing;
  }
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  if (Req.HasId)
    W.key("id").value(Req.Id);
  W.key("status").value(Draining.load() ? "draining" : "ok");
  W.key("workers").value(static_cast<uint64_t>(Opts.Workers));
  W.key("queued").value(static_cast<uint64_t>(Queued));
  W.key("executing").value(static_cast<uint64_t>(Running));
  W.key("queueCap").value(static_cast<uint64_t>(Opts.QueueCap));
  W.key("cache").value(Cache != nullptr);
  W.endObject();
  return W.str();
}

std::string Server::statsJson(const ServeRequest &Req) {
  size_t Queued, Running;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    Queued = Queue.size();
    Running = Executing;
  }
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  if (Req.HasId)
    W.key("id").value(Req.Id);
  W.key("stats");
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    refreshDerivedLocked(Queued, Running);
    Metrics.writeJson(W);
  }
  W.endObject();
  return W.str();
}

void Server::refreshDerivedLocked(size_t Queued, size_t Running) {
  // Mirror every derived counter and gauge into the registry at read
  // time, unconditionally: a scrape of a daemon with the cache off (or
  // before the first request) carries the same key set at zero, so the
  // stats and metrics documents have one uniform vocabulary.
  ResultCache::CacheStats CS = Cache ? Cache->stats()
                                     : ResultCache::CacheStats{};
  Metrics.set("serve.cache.hits", CS.Hits);
  Metrics.set("serve.cache.misses", CS.Misses);
  Metrics.set("serve.cache.stores", CS.Stores);
  Metrics.set("serve.cache.storeFailures", CS.StoreFailures);
  Metrics.set("serve.cache.corrupt", CS.Corrupt);
  Metrics.set("serve.cache.collisions", CS.Collisions);
  Metrics.set("serve.cache.sweptTmp", CS.SweptTmp);

  MemoStore::StoreStats MS =
      Opts.Incremental ? Memo.stats() : MemoStore::StoreStats{};
  Metrics.setGauge("serve.memo.tables", MS.Tables);
  Metrics.setGauge("serve.memo.entries", MS.Entries);

  Metrics.setGauge("serve.queue.depth", Queued);
  Metrics.setGauge("serve.queue.executing", Running);
  Metrics.setGauge("serve.queue.cap", Opts.QueueCap);
  Metrics.setGauge("serve.workers", Opts.Workers);

  Metrics.setGauge("serve.flight.inFlight",
                   Flight ? Flight->inFlightCount() : 0);
  Metrics.setGauge("serve.flight.recent",
                   Flight ? Flight->recentCount() : 0);
  Metrics.setGauge("serve.flight.capacity", Flight ? Flight->capacity() : 0);

  Metrics.set("serve.log.written", Log ? Log->written() : 0);
  Metrics.set("serve.log.failures", Log ? Log->failures() : 0);
  Metrics.set("serve.log.rotations", Log ? Log->rotations() : 0);
}

std::string Server::metricsResponse(const ServeRequest &Req) {
  size_t Queued, Running;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    Queued = Queue.size();
    Running = Executing;
  }
  if (Req.Format == "prometheus") {
    std::ostringstream Body;
    {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      refreshDerivedLocked(Queued, Running);
      Metrics.writePrometheus(Body);
    }
    JsonWriter W;
    W.beginObject();
    W.key("ok").value(true);
    if (Req.HasId)
      W.key("id").value(Req.Id);
    W.key("contentType").value("text/plain; version=0.0.4");
    W.key("body").value(Body.str());
    W.endObject();
    return W.str();
  }
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  if (Req.HasId)
    W.key("id").value(Req.Id);
  W.key("metrics");
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    refreshDerivedLocked(Queued, Running);
    Metrics.writeJson(W);
  }
  W.endObject();
  return W.str();
}

std::string Server::dumpResponse(const ServeRequest &Req) {
  std::string Out = "{\"ok\":true";
  if (Req.HasId)
    Out += ",\"id\":" + std::to_string(Req.Id);
  if (!Flight) {
    Out += ",\"enabled\":false}";
    return Out;
  }
  Out += ",\"enabled\":true";
  if (!Opts.FlightDumpPath.empty()) {
    bool Wrote = Flight->dumpTo(Opts.FlightDumpPath);
    Out += ",\"path\":\"" + jsonEscape(Opts.FlightDumpPath) + "\"";
    Out += ",\"written\":";
    Out += Wrote ? "true" : "false";
  }
  Out += ",\"flight\":" + Flight->renderJson() + "}";
  return Out;
}

void Server::finishRecord(RequestRecord &Rec) {
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    if (Rec.Outcome == "shed") {
      Metrics.add("serve.shed", 1);
    } else {
      if (Rec.Outcome == "failed")
        Metrics.add("serve.analyze.failed", 1);
      else
        Metrics.add("serve.analyze.responded", 1);
      uint64_t Us = static_cast<uint64_t>(Rec.TotalUs);
      Metrics.histogram("serve.latencyUs").record(Us);
      Metrics
          .windowed("serve.latency.window.us{analyzer=\"" + Rec.Analyzer +
                    "\"}")
          .record(Us);
    }
  }
  if (Log)
    Log->append(Rec);
  if (Flight)
    Flight->complete(Rec);
}

void Server::writeLine(Connection &C, const std::string &Line) {
  if (C.WriteDead.load())
    return;
  std::lock_guard<std::mutex> Lock(C.WriteMu);
  std::string Framed = Line;
  Framed.push_back('\n');
  size_t Off = 0;
  while (Off < Framed.size()) {
    ssize_t N = ::send(C.Fd, Framed.data() + Off, Framed.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // The client went away; there is nobody to tell. Drop the rest of
      // this connection's output but keep the daemon healthy.
      C.WriteDead.store(true);
      return;
    }
    Off += static_cast<size_t>(N);
  }
}

void Server::countError(ServeErrorKind Kind) {
  std::lock_guard<std::mutex> Lock(MetricsMu);
  Metrics.add(std::string("serve.error.") + str(Kind), 1);
}
