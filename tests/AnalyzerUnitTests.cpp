//===- tests/AnalyzerUnitTests.cpp - Analyzer unit behaviour ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small handcrafted programs with exact expected abstract results, plus
/// unit checks of CFG extraction, the loop rules, cut-off behaviour, and
/// budget exhaustion, for all three analyzers.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "gen/Workloads.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using cpsflow::test::mustParse;
using CD = domain::ConstantDomain;

namespace {

template <typename D = CD>
DirectResult<D> analyzeDirect(Context &Ctx, const std::string &Text,
                              std::vector<DirectBinding<D>> Init = {},
                              AnalyzerOptions Opts = AnalyzerOptions()) {
  const syntax::Term *T = mustParse(Ctx, Text);
  return DirectAnalyzer<D>(Ctx, T, std::move(Init), Opts).run();
}

TEST(DirectAnalyzer, ConstantsFlowThroughLets) {
  Context Ctx;
  auto R = analyzeDirect(Ctx, "(let (x 1) (let (y (add1 x)) y))");
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "2");
  EXPECT_EQ(CD::str(R.valueOf(Ctx.intern("x")).Num), "1");
  EXPECT_EQ(CD::str(R.valueOf(Ctx.intern("y")).Num), "2");
}

TEST(DirectAnalyzer, KnownConditionalTakesOneBranch) {
  Context Ctx;
  auto R = analyzeDirect(Ctx, "(let (a (if0 0 10 20)) a)");
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "10");
  ASSERT_EQ(R.Cfg.Branches.size(), 1u);
  const BranchInfo &BI = R.Cfg.Branches.begin()->second;
  EXPECT_TRUE(BI.ThenFeasible);
  EXPECT_FALSE(BI.ElseFeasible);
}

TEST(DirectAnalyzer, UnknownConditionalMergesBranches) {
  Context Ctx;
  std::vector<DirectBinding<CD>> Init = {
      {Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}};
  auto R = analyzeDirect(Ctx, "(let (a (if0 z 10 20)) a)", Init);
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "T");
  const BranchInfo &BI = R.Cfg.Branches.begin()->second;
  EXPECT_TRUE(BI.ThenFeasible);
  EXPECT_TRUE(BI.ElseFeasible);
}

TEST(DirectAnalyzer, SameBranchConstantsSurviveTheMerge) {
  Context Ctx;
  std::vector<DirectBinding<CD>> Init = {
      {Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}};
  auto R = analyzeDirect(Ctx, "(let (a (if0 z 7 7)) a)", Init);
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "7");
}

TEST(DirectAnalyzer, ApplicationJoinsAllCallees) {
  Context Ctx;
  // f may be either constant closure; the call result merges to top.
  auto R = analyzeDirect(
      Ctx, "(let (f (if0 z (lambda (d0) 0) (lambda (d1) 1))) "
           "(let (a (f 9)) a))",
      {{Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}});
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "T");
  // The call site saw both closures.
  ASSERT_EQ(R.Cfg.Callees.size(), 1u);
  EXPECT_EQ(R.Cfg.Callees.begin()->second.size(), 2u);
  // Both parameters received 9.
  EXPECT_EQ(CD::str(R.valueOf(Ctx.intern("d0")).Num), "9");
  EXPECT_EQ(CD::str(R.valueOf(Ctx.intern("d1")).Num), "9");
}

TEST(DirectAnalyzer, PrimitivesAreAbstractClosures) {
  Context Ctx;
  auto R = analyzeDirect(Ctx, "(let (p add1) (let (a (p 4)) a))");
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "5");
  EXPECT_TRUE(
      R.valueOf(Ctx.intern("p")).Clos.contains(domain::CloRef::inc()));
}

TEST(DirectAnalyzer, DeadApplicationKillsTheRestOfTheChain) {
  Context Ctx;
  // Applying a number: no abstract closures, so the chain after the
  // binding is dead and the answer is bottom.
  auto R = analyzeDirect(Ctx, "(let (a (1 2)) (let (b 5) b))");
  EXPECT_TRUE(R.Answer.Value.isBot());
  EXPECT_TRUE(R.valueOf(Ctx.intern("b")).isBot());
}

TEST(DirectAnalyzer, LoopRuleIsExactAndComplete) {
  Context Ctx;
  auto R = analyzeDirect(Ctx, "(let (x (loop)) (let (y (add1 x)) y))");
  EXPECT_EQ(CD::str(R.valueOf(Ctx.intern("x")).Num), "T");
  EXPECT_TRUE(R.Stats.complete());
  EXPECT_FALSE(R.Stats.LoopBounded);
}

TEST(DirectAnalyzer, BudgetExhaustionIsReported) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 8);
  AnalyzerOptions Opts;
  Opts.MaxGoals = 10;
  auto R = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Opts).run();
  EXPECT_TRUE(R.Stats.BudgetExhausted);
  EXPECT_FALSE(R.Stats.complete());
}

TEST(DirectAnalyzer, MemoizationCountsCacheHits) {
  Context Ctx;
  // Both branches of the unknown conditional apply the same closure to
  // the same argument *from the same store*, so the second branch's body
  // goal is answered from the memo table.
  auto R = analyzeDirect(
      Ctx,
      "(let (f (lambda (p) p)) "
      "(let (c (if0 z (let (u (f 1)) u) (let (v (f 1)) v))) c))",
      {{Ctx.intern("z"), domain::AbsVal<CD>::number(CD::top())}});
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "1");
  EXPECT_GT(R.Stats.CacheHits, 0u);
}

TEST(DirectAnalyzer, SignDomainClient) {
  using SD = domain::SignDomain;
  Context Ctx;
  auto R = analyzeDirect<SD>(Ctx, "(let (x 3) (let (y (add1 x)) y))");
  EXPECT_EQ(SD::str(R.Answer.Value.Num), "+");
}

TEST(DirectAnalyzer, IntervalDomainClient) {
  using ID = domain::IntervalDomain;
  Context Ctx;
  // The exact loop rule: x covers all naturals; the probe stays a range.
  auto R = analyzeDirect<ID>(
      Ctx, "(let (x (loop)) (let (y (add1 x)) y))");
  EXPECT_EQ(ID::str(R.valueOf(Ctx.intern("x")).Num), "[0,+inf]");
  EXPECT_EQ(ID::str(R.valueOf(Ctx.intern("y")).Num), "[1,+inf]");

  // Branch join produces a range instead of the constant lattice's top.
  auto R2 = analyzeDirect<ID>(
      Ctx, "(let (a (if0 z 4 7)) a)",
      {{Ctx.intern("z"), domain::AbsVal<ID>::number(ID::top())}});
  EXPECT_EQ(ID::str(R2.Answer.Value.Num), "[4,7]");
}

TEST(DirectAnalyzer, ParityDomainClient) {
  using PD = domain::ParityDomain;
  Context Ctx;
  auto R = analyzeDirect<PD>(
      Ctx, "(let (x 4) (let (y (add1 x)) (let (w (add1 y)) w)))");
  EXPECT_EQ(PD::str(R.Answer.Value.Num), "even");
}

//===----------------------------------------------------------------------===//
// Semantic-CPS analyzer
//===----------------------------------------------------------------------===//

TEST(SemanticAnalyzer, DuplicatesBranchAnalyses) {
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto R = SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  EXPECT_EQ(CD::str(R.valueOf(Ctx.intern("a2")).Num), "3");
  // Both branches of the first conditional were feasible.
  bool SawBoth = false;
  for (const auto &[If, BI] : R.Cfg.Branches)
    SawBoth |= BI.ThenFeasible && BI.ElseFeasible;
  EXPECT_TRUE(SawBoth);
}

TEST(SemanticAnalyzer, ExploresExponentiallyManyGoals) {
  Context Ctx;
  Witness W4 = gen::conditionalChain(Ctx, 4);
  Witness W8 = gen::conditionalChain(Ctx, 8);
  auto R4 =
      SemanticCpsAnalyzer<CD>(Ctx, W4.Anf, directBindings<CD>(W4)).run();
  auto R8 =
      SemanticCpsAnalyzer<CD>(Ctx, W8.Anf, directBindings<CD>(W8)).run();
  auto D4 = DirectAnalyzer<CD>(Ctx, W4.Anf, directBindings<CD>(W4)).run();
  auto D8 = DirectAnalyzer<CD>(Ctx, W8.Anf, directBindings<CD>(W8)).run();
  // Semantic goals grow much faster than direct goals (2^n vs n).
  double SemGrowth = double(R8.Stats.Goals) / double(R4.Stats.Goals);
  double DirGrowth = double(D8.Stats.Goals) / double(D4.Stats.Goals);
  EXPECT_GT(SemGrowth, 8.0);
  EXPECT_LT(DirGrowth, 4.0);
}

TEST(SemanticAnalyzer, LoopUnrollReportsTruncation) {
  Context Ctx;
  Witness W = gen::loopProbe(Ctx, 100); // probe beyond the default bound
  AnalyzerOptions Opts;
  Opts.LoopUnroll = 8;
  Opts.LoopSoundSummary = false;
  auto R =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Opts).run();
  EXPECT_TRUE(R.Stats.LoopBounded);
  // With the bound below the probe the 7-branch is never seen: r = 9.
  EXPECT_EQ(CD::str(R.valueOf(W.Probe).Num), "9");

  // Crossing the probe changes the (supposedly converged) result — the
  // Section 6.2 undecidability in action.
  AnalyzerOptions Wide = Opts;
  Wide.LoopUnroll = 128;
  auto R2 =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Wide).run();
  EXPECT_EQ(CD::str(R2.valueOf(W.Probe).Num), "T");
}

TEST(SemanticAnalyzer, LoopSummaryRestoresSoundness) {
  Context Ctx;
  Witness W = gen::loopProbe(Ctx, 100);
  AnalyzerOptions Opts;
  Opts.LoopUnroll = 8;
  Opts.LoopSoundSummary = true; // default
  auto R =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Opts).run();
  // The summary iterate reaches both branches: r = T covers the exact
  // join {7, 9}.
  EXPECT_EQ(CD::str(R.valueOf(W.Probe).Num), "T");
}

//===----------------------------------------------------------------------===//
// Syntactic-CPS analyzer
//===----------------------------------------------------------------------===//

TEST(SyntacticAnalyzer, CollectsContinuationsAtKVars) {
  Context Ctx;
  Witness W = theorem51(Ctx);
  auto R = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
  // The identity's k parameter collected both call sites' continuations.
  ASSERT_EQ(W.Cps.Lams.size(), 1u);
  Symbol K = W.Cps.Lams[0]->kparam();
  EXPECT_EQ(R.valueOf(K).Konts.size(), 2u);
}

TEST(SyntacticAnalyzer, StopContinuationYieldsTheAnswer) {
  Context Ctx;
  const syntax::Term *T = mustParse(Ctx, "(let (x (add1 1)) x)");
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  ASSERT_TRUE(P.hasValue());
  auto R = SyntacticCpsAnalyzer<CD>(Ctx, *P).run();
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "2");
  EXPECT_TRUE(R.Stats.complete());
}

TEST(SyntacticAnalyzer, LoopkMirrorsSemanticLoop) {
  Context Ctx;
  Witness W = gen::loopProbe(Ctx, 100);
  AnalyzerOptions Opts;
  Opts.LoopUnroll = 8;
  Opts.LoopSoundSummary = false;
  auto R = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W), Opts).run();
  EXPECT_TRUE(R.Stats.LoopBounded);
  EXPECT_EQ(CD::str(R.valueOf(W.Probe).Num), "9");
}

TEST(SyntacticAnalyzer, UniverseIncludesStopAndAllKonts) {
  Context Ctx;
  Witness W = theorem52a(Ctx);
  SyntacticCpsAnalyzer<CD> A(Ctx, W.Cps, cpsBindings<CD>(W));
  EXPECT_TRUE(A.kontUniverse().contains(domain::KontRef::stop()));
  EXPECT_EQ(A.kontUniverse().size(), W.Cps.ContLams.size() + 1);
  EXPECT_TRUE(A.closureUniverse().contains(domain::CpsCloRef::inck()));
}

} // namespace

namespace {

TEST(DirectAnalyzer, DerivationSinkRecordsGoalsAndAnswers) {
  Context Ctx;
  std::vector<std::string> Derivation;
  AnalyzerOptions Opts;
  Opts.DerivationSink = &Derivation;
  const syntax::Term *T =
      cpsflow::test::mustParse(Ctx, "(let (x (add1 1)) x)");
  auto R = DirectAnalyzer<CD>(Ctx, T, {}, Opts).run();
  EXPECT_EQ(CD::str(R.Answer.Value.Num), "2");
  ASSERT_FALSE(Derivation.empty());
  // Root goal shows the whole program and its answer.
  EXPECT_NE(Derivation[0].find("(let (x (add1 1)) x)"), std::string::npos);
  EXPECT_NE(Derivation[0].find("|- (2, {})"), std::string::npos);
}

TEST(DirectAnalyzer, DerivationSinkMarksDeadGoals) {
  Context Ctx;
  std::vector<std::string> Derivation;
  AnalyzerOptions Opts;
  Opts.DerivationSink = &Derivation;
  const syntax::Term *T =
      cpsflow::test::mustParse(Ctx, "(let (a (1 2)) a)");
  (void)DirectAnalyzer<CD>(Ctx, T, {}, Opts).run();
  bool SawDead = false;
  for (const std::string &Line : Derivation)
    SawDead |= Line.find("|- dead") != std::string::npos;
  EXPECT_TRUE(SawDead);
}

} // namespace
