file(REMOVE_RECURSE
  "CMakeFiles/incomparability_census.dir/incomparability_census.cpp.o"
  "CMakeFiles/incomparability_census.dir/incomparability_census.cpp.o.d"
  "incomparability_census"
  "incomparability_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incomparability_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
