//===- interp/Direct.h - Figure 1: the direct interpreter -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The direct (store) interpreter M of Figure 1.
///
/// The paper defines M on the restricted (A-normal) subset; this
/// implementation accepts the full language A — on A-normal terms it
/// applies exactly the Figure 1 rules, and on general terms the standard
/// call-by-value extension, which lets tests check that A-normalization
/// preserves the semantics (footnote 2 of the paper).
///
/// Free variables of the program may be pre-bound through the initial
/// bindings argument (the environment/store pair of the judgment
/// `(M, rho, s) M A`).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_INTERP_DIRECT_H
#define CPSFLOW_INTERP_DIRECT_H

#include "interp/Runtime.h"

#include <map>
#include <string>
#include <set>
#include <utility>
#include <vector>

namespace cpsflow {
namespace interp {

/// One initial binding: the program sees \p Var bound to \p Value.
struct InitialBinding {
  Symbol Var;
  RtValue Value;
};

/// Runs the Figure 1 interpreter.
///
/// The object is single-use: construct, call run once, then inspect the
/// final store via store() (e.g. to compare per-variable value histories
/// against an abstract analysis).
class DirectInterp {
public:
  explicit DirectInterp(RunLimits Limits = RunLimits()) : Limits(Limits) {}

  /// Evaluates \p Program under \p Initial. \returns the answer value or
  /// the failure mode (stuck / diverged / out of fuel).
  RunResult run(const syntax::Term *Program,
                const std::vector<InitialBinding> &Initial = {});

  /// The final store (valid after run; reflects a partial run on failure).
  const Store &store() const { return TheStore; }

  /// Enables execution tracing: each evaluation and application appends
  /// one line (capped at \p MaxLines) retrievable via trace(). \p Ctx
  /// must outlive the run.
  void enableTrace(const Context &Ctx, size_t MaxLines = 2000) {
    TraceCtx = &Ctx;
    MaxTrace = MaxLines;
  }

  /// The recorded trace (valid after run when tracing was enabled).
  const std::vector<std::string> &trace() const { return Trace; }

  /// The concrete call graph of the run: per application site, the
  /// user-defined procedures actually applied there (primitives excluded).
  /// Ground truth for the abstract analyzers' CFG extraction.
  const std::map<const syntax::AppTerm *,
                 std::set<const syntax::LamValue *>> &
  calleeLog() const {
    return CalleeLog;
  }

private:
  /// Outcome of one recursive evaluation; Ok carries a value.
  struct Partial {
    bool Ok;
    RtValue Value;
  };

  Partial evalTerm(const syntax::Term *T, const EnvNode *Env,
                   uint32_t Depth);
  Partial evalValue(const syntax::Value *V, const EnvNode *Env);
  Partial apply(const RtValue &Fun, const RtValue &Arg, uint32_t Depth,
                const syntax::AppTerm *Site = nullptr);

  Partial fail(RunStatus Status, std::string Message) {
    if (Result.Status == RunStatus::Ok) {
      Result.Status = Status;
      Result.Message = std::move(Message);
    }
    return Partial{false, RtValue()};
  }

  bool spendFuel() {
    ++Result.Steps;
    return Result.Steps <= Limits.MaxSteps;
  }

  RunLimits Limits;
  RunResult Result;
  Store TheStore;
  EnvArena Envs;
  std::map<const syntax::AppTerm *, std::set<const syntax::LamValue *>>
      CalleeLog;
  const Context *TraceCtx = nullptr;
  size_t MaxTrace = 0;
  std::vector<std::string> Trace;
};

} // namespace interp
} // namespace cpsflow

#endif // CPSFLOW_INTERP_DIRECT_H
