# Empty compiler generated dependencies file for cpsflow_gen.
# This may be replaced when dependencies are built.
