//===- clients/ConstFold.h - Constant folding client ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An optimizer client of the direct analysis: constant-folds primitive
/// applications whose abstract result is a known constant and removes
/// conditional branches the analysis proved infeasible. This demonstrates
/// the "advanced optimization" consumer the paper's introduction motivates
/// for data flow analysis.
///
/// Caveat: folding assumes the program does not get stuck (applying add1
/// to a closure); on stuck programs folding may turn a stuck run into a
/// completing one, as in any optimizer for an untyped language.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CLIENTS_CONSTFOLD_H
#define CPSFLOW_CLIENTS_CONSTFOLD_H

#include "analysis/DirectAnalyzer.h"
#include "domain/NumDomain.h"
#include "syntax/Ast.h"

namespace cpsflow {
namespace clients {

/// Outcome of a folding pass.
struct FoldResult {
  /// The rewritten program, re-normalized to ANF.
  const syntax::Term *Folded = nullptr;
  /// Primitive applications replaced by numerals.
  size_t FoldedApps = 0;
  /// Conditionals reduced to a single branch.
  size_t ElimBranches = 0;
};

/// Folds \p Anf using the result \p R of a constant-propagation run of
/// the direct analyzer over the same term.
FoldResult
constantFold(Context &Ctx, const syntax::Term *Anf,
             const analysis::DirectResult<domain::ConstantDomain> &R);

} // namespace clients
} // namespace cpsflow

#endif // CPSFLOW_CLIENTS_CONSTFOLD_H
