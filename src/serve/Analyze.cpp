//===- serve/Analyze.cpp - One contained serve analysis -------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Analyze.h"

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "gen/Digest.h"
#include "serve/MemoStore.h"
#include "support/FaultInjector.h"
#include "support/Json.h"
#include "syntax/Analysis.h"
#include "syntax/Sugar.h"

#include <exception>
#include <new>

using namespace cpsflow;
using namespace cpsflow::serve;

namespace {

AnalyzeOutcome fail(ServeErrorKind Kind, std::string Message) {
  AnalyzeOutcome Out;
  Out.Kind = Kind;
  Out.Message = std::move(Message);
  return Out;
}

/// Renders the deterministic result payload: same stats vocabulary as a
/// batch program record, minus every timing field, plus the leg identity
/// (a batch record carries all four legs; a serve response carries one).
AnalyzeOutcome renderResult(const Context &Ctx, const ServeRequest &Req,
                            uint64_t Nodes, const std::string &Answer,
                            const analysis::AnalyzerStats &Stats) {
  AnalyzeOutcome Out;
  Out.Ok = true;
  Out.Degraded = Stats.Degraded != support::DegradeReason::None ||
                 Stats.BudgetExhausted;
  Out.Answer = Answer;
  (void)Ctx;

  JsonWriter W;
  W.beginObject();
  W.key("analyzer").value(Req.Analyzer);
  W.key("domain").value(Req.Domain);
  W.key("nodes").value(Nodes);
  W.key("answer").value(Answer);
  W.key("stats").beginObject();
  W.key("goals").value(Stats.Goals);
  W.key("cacheHits").value(Stats.CacheHits);
  W.key("cuts").value(Stats.Cuts);
  W.key("joins").value(Stats.Joins);
  W.key("callMerges").value(Stats.CallMerges);
  W.key("maxDepth").value(Stats.MaxDepth);
  W.key("deadPaths").value(Stats.DeadPaths);
  W.key("prunedBranches").value(Stats.PrunedBranches);
  W.key("memoEntries").value(Stats.MemoEntries);
  W.key("stores").value(Stats.InternedStores);
  W.key("storeBytes").value(Stats.InternerBytes);
  W.key("budgetExhausted").value(Stats.BudgetExhausted);
  W.key("degradeReason").value(support::str(Stats.Degraded));
  W.key("loopBounded").value(Stats.LoopBounded);
  W.key("summaryHits").value(Stats.SummaryHits);
  W.key("summaryMisses").value(Stats.SummaryMisses);
  W.key("summaryEntries").value(Stats.SummaryEntries);
  W.key("summaryReuseDepth");
  Stats.SummaryReuseDepth.writeJson(W);
  W.key("replayHits").value(Stats.ReplayHits);
  W.key("replayMisses").value(Stats.ReplayMisses);
  W.endObject();
  W.endObject();
  Out.PayloadJson = W.str();
  Out.ReplayHits = Stats.ReplayHits;
  Out.ReplayMisses = Stats.ReplayMisses;
  Out.Incremental = Stats.ReplayHits != 0 || Stats.ReplayMisses != 0;
  Out.Goals = Stats.Goals;
  Out.DegradeReason = support::str(Stats.Degraded);
  return Out;
}

/// Microseconds elapsed since \p T0.
double usSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

template <typename D>
AnalyzeOutcome analyzeLeg(const ServeRequest &Req, const AnalyzeConfig &Cfg) {
  Context Ctx;
  double ParseUs = 0, CpsUs = 0;

  auto TParse = std::chrono::steady_clock::now();
  support::TraceSpan ParseSpan(Cfg.Trace, "parse", "phase", Cfg.TraceTid);
  Result<const syntax::Term *> Parsed =
      syntax::parseSugaredProgram(Ctx, Req.Program);
  if (!Parsed) {
    AnalyzeOutcome Out = fail(ServeErrorKind::Parse,
                              "parse error: " + Parsed.error().str());
    Out.ParseUs = usSince(TParse);
    return Out;
  }
  const syntax::Term *Anf = anf::normalizeProgram(Ctx, *Parsed);
  uint64_t Nodes = syntax::countNodes(Anf);
  ParseSpan.close();
  ParseUs = usSince(TParse);

  auto TCps = std::chrono::steady_clock::now();
  support::TraceSpan CpsSpan(Cfg.Trace, "cps", "phase", Cfg.TraceTid);
  Result<cps::CpsProgram> Cps = cps::cpsTransform(Ctx, Anf);
  if (!Cps) {
    AnalyzeOutcome Out =
        fail(ServeErrorKind::Cps, "cps error: " + Cps.error().str());
    Out.ParseUs = ParseUs;
    Out.CpsUs = usSince(TCps);
    return Out;
  }
  CpsSpan.close();
  CpsUs = usSince(TCps);

  // Free inputs bind to numeric top, like the batch driver: every request
  // for the same source sees the same closed problem.
  std::vector<analysis::DirectBinding<D>> Init;
  for (Symbol X : syntax::freeVars(Anf))
    Init.push_back({X, domain::AbsVal<D>::number(D::top())});
  std::vector<analysis::CpsBinding<D>> CInit;
  for (const analysis::DirectBinding<D> &B : Init)
    CInit.push_back({B.Var, analysis::deltaE<D>(B.Value, *Cps)});

  analysis::AnalyzerOptions AOpts;
  AOpts.MaxGoals = Cfg.MaxGoals;
  AOpts.LoopUnroll = Req.LoopUnroll;
  AOpts.UseSummaries = Req.UseSummaries;
  AOpts.Trace = Cfg.Trace;
  AOpts.TraceTid = Cfg.TraceTid;
  support::GovernorLimits Limits;
  Limits.MaxStoreBytes = Cfg.MaxStoreBytes;
  Limits.MaxDepth = Cfg.MaxDepth;
  Limits.Interrupt = Cfg.Interrupt;
  Limits.deadlineIn(Cfg.DeadlineMs);
  AOpts.Governor = Limits;

  auto TAnalyze = std::chrono::steady_clock::now();
  support::TraceSpan AnalyzeSpan(Cfg.Trace, "analyze:" + Req.Analyzer,
                                 "phase", Cfg.TraceTid);
  AnalyzeOutcome Out = [&]() -> AnalyzeOutcome {
  if (Req.Analyzer == "direct") {
    if (Cfg.Memo && Req.Incremental) {
      MemoStoreKey MKey;
      MKey.Analyzer = Req.Analyzer;
      MKey.Domain = Req.Domain;
      MKey.MaxGoals = Cfg.MaxGoals;
      MKey.LoopUnroll = Req.LoopUnroll;
      MKey.DupBudget = Req.DupBudget;
      MKey.UseSummaries = Req.UseSummaries;

      gen::SubtreeDigests Digests;
      gen::computeSubtreeDigests(Ctx, Anf, Digests);
      std::shared_ptr<const analysis::MemoTable<D>> Import =
          Cfg.Memo->snapshot<D>(MKey);
      analysis::MemoTable<D> Export;
      analysis::MemoXfer X{&Digests, Import.get(), &Export};
      analysis::AnalyzerOptions WOpts = AOpts;
      WOpts.Xfer = &X;
      auto R = analysis::DirectAnalyzer<D>(Ctx, Anf, Init, WOpts).run();
      if (R.Stats.BudgetExhausted &&
          (R.Stats.ReplayHits || R.Stats.ReplayMisses)) {
        // A degraded warm run is the one case where replay shifts where
        // the budget wall lands, so the degraded answer could differ from
        // a cold run's. Recompute cold: the response a client sees is
        // never a function of the memo store's state.
        R = analysis::DirectAnalyzer<D>(Ctx, Anf, Init, AOpts).run();
      } else if (!R.Stats.BudgetExhausted) {
        Cfg.Memo->merge<D>(MKey, std::move(Export));
      }
      return renderResult(Ctx, Req, Nodes, R.Answer.Value.str(Ctx), R.Stats);
    }
    auto R = analysis::DirectAnalyzer<D>(Ctx, Anf, Init, AOpts).run();
    return renderResult(Ctx, Req, Nodes, R.Answer.Value.str(Ctx), R.Stats);
  }
  if (Req.Analyzer == "semantic") {
    auto R = analysis::SemanticCpsAnalyzer<D>(Ctx, Anf, Init, AOpts).run();
    return renderResult(Ctx, Req, Nodes, R.Answer.Value.str(Ctx), R.Stats);
  }
  if (Req.Analyzer == "syntactic") {
    auto R =
        analysis::SyntacticCpsAnalyzer<D>(Ctx, *Cps, CInit, AOpts).run();
    return renderResult(Ctx, Req, Nodes, R.Answer.Value.str(Ctx), R.Stats);
  }
  if (Req.Analyzer == "dup") {
    auto R = analysis::DupAnalyzer<D>(Ctx, Anf, Init, Req.DupBudget, AOpts)
                 .run();
    return renderResult(Ctx, Req, Nodes, R.Answer.Value.str(Ctx), R.Stats);
  }
  if (Req.Analyzer == "pushdown") {
    // Always a cold run: the subtree-replay transfer (Xfer) keys direct
    // memo entries, and the pushdown memo is per-run. MemoStore bucketing
    // still works — the key carries the canonical analyzer name.
    auto R = analysis::PushdownAnalyzer<D>(Ctx, Anf, Init, AOpts).run();
    return renderResult(Ctx, Req, Nodes, R.Answer.Value.str(Ctx), R.Stats);
  }
  return fail(ServeErrorKind::Internal,
              "unknown analyzer '" + Req.Analyzer + "'");
  }();
  AnalyzeSpan.close();
  Out.AnalyzeUs = usSince(TAnalyze);
  Out.ParseUs = ParseUs;
  Out.CpsUs = CpsUs;
  return Out;
}

AnalyzeOutcome dispatchDomain(const ServeRequest &Req,
                              const AnalyzeConfig &Cfg) {
  if (Req.Domain == "constant")
    return analyzeLeg<domain::ConstantDomain>(Req, Cfg);
  if (Req.Domain == "unit")
    return analyzeLeg<domain::UnitDomain>(Req, Cfg);
  if (Req.Domain == "sign")
    return analyzeLeg<domain::SignDomain>(Req, Cfg);
  if (Req.Domain == "parity")
    return analyzeLeg<domain::ParityDomain>(Req, Cfg);
  if (Req.Domain == "interval")
    return analyzeLeg<domain::IntervalDomain>(Req, Cfg);
  return fail(ServeErrorKind::Internal,
              "unknown domain '" + Req.Domain + "'");
}

} // namespace

AnalyzeOutcome cpsflow::serve::runServeAnalyze(const ServeRequest &Req,
                                               const AnalyzeConfig &Cfg,
                                               uint64_t RequestOrdinal) {
  (void)RequestOrdinal;
  try {
    CPSFLOW_FAULT_COUNTED(fault::Site::ServeWorker, RequestOrdinal);
    return dispatchDomain(Req, Cfg);
  } catch (const std::bad_alloc &) {
    return fail(ServeErrorKind::Memory, "contained failure: out of memory");
  } catch (const std::exception &Ex) {
    return fail(ServeErrorKind::Internal,
                std::string("contained failure: ") + Ex.what());
  } catch (...) {
    return fail(ServeErrorKind::Internal,
                "contained failure: unknown exception");
  }
}
