//===- fuzz/Mutator.cpp - Structural program mutation -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "anf/Anf.h"
#include "fuzz/Rewrite.h"
#include "syntax/Builder.h"
#include "syntax/Printer.h"
#include "syntax/Sugar.h"

namespace cpsflow {
namespace fuzz {

using namespace syntax;

namespace {

/// One mutation attempt on \p T. \returns the edited term, or null when
/// the drawn mutation has no applicable site (caller redraws).
const Term *mutateOnce(Context &Ctx, const Term *T, Rng &Random) {
  Builder B(Ctx);
  switch (Random.below(6)) {
  case 0: {
    // Swap the operator and operand of an application.
    std::vector<const Term *> Apps;
    for (const Term *N : collectTerms(T))
      if (isa<AppTerm>(N))
        Apps.push_back(N);
    if (Apps.empty())
      return nullptr;
    const auto *A = cast<AppTerm>(Apps[Random.below(Apps.size())]);
    EditMap E;
    E.Terms[A] = B.app(A->arg(), A->fun());
    return rewriteTerm(Ctx, T, E);
  }
  case 1: {
    // Perturb a numeral: +-1, double, or negate.
    std::vector<const Value *> Nums;
    for (const Value *V : collectValues(T))
      if (isa<NumValue>(V))
        Nums.push_back(V);
    if (Nums.empty())
      return nullptr;
    const auto *N = cast<NumValue>(Nums[Random.below(Nums.size())]);
    int64_t Old = N->value();
    int64_t New = Old;
    switch (Random.below(4)) {
    case 0:
      New = Old + 1;
      break;
    case 1:
      New = Old - 1;
      break;
    case 2:
      New = Old * 2;
      break;
    default:
      New = -Old;
      break;
    }
    if (New == Old)
      New = Old + 1;
    EditMap E;
    E.Values[N] = B.num(New);
    return rewriteTerm(Ctx, T, E);
  }
  case 2: {
    // Duplicate a let binding under a fresh name (exercises store joins
    // on repeated bindings of the same shape).
    std::vector<const LetTerm *> Lets = collectLets(T);
    if (Lets.empty())
      return nullptr;
    const LetTerm *L = Lets[Random.below(Lets.size())];
    Symbol Fresh = Ctx.fresh(Ctx.spelling(L->var()));
    EditMap E;
    E.Terms[L] = B.let(L->var(), L->bound(),
                       B.let(Fresh, L->bound(), L->body()));
    return rewriteTerm(Ctx, T, E);
  }
  case 3: {
    // Drop a let binding; later uses of its variable become free (bound
    // to an integer by the oracle harness) — a legal program shape.
    std::vector<const LetTerm *> Lets = collectLets(T);
    if (Lets.empty())
      return nullptr;
    const LetTerm *L = Lets[Random.below(Lets.size())];
    EditMap E;
    E.Terms[L] = L->body();
    return rewriteTerm(Ctx, T, E);
  }
  case 4: {
    // Wrap a let's bound term in a conditional on one of its numerals
    // (or 0), introducing a join point.
    std::vector<const LetTerm *> Lets = collectLets(T);
    if (Lets.empty())
      return nullptr;
    const LetTerm *L = Lets[Random.below(Lets.size())];
    const Term *Bound = L->bound();
    const Term *Other = B.numTerm(Random.range(0, 3));
    bool ThenBranch = Random.chance(1, 2);
    EditMap E;
    E.Terms[Bound] = B.if0(B.numTerm(Random.chance(1, 2) ? 0 : 1),
                           ThenBranch ? Bound : Other,
                           ThenBranch ? Other : Bound);
    // The bound term is nested inside the replacement, which rewriteTerm
    // emits verbatim — exactly what we want here.
    return rewriteTerm(Ctx, T, E);
  }
  default: {
    // Eta-wrap an application's operator: f becomes (lambda (t) (f t)),
    // stressing closure flow without changing meaning.
    std::vector<const Term *> Apps;
    for (const Term *N : collectTerms(T))
      if (isa<AppTerm>(N))
        Apps.push_back(N);
    if (Apps.empty())
      return nullptr;
    const auto *A = cast<AppTerm>(Apps[Random.below(Apps.size())]);
    Symbol Param = Ctx.fresh("eta");
    const Term *EtaBody = B.app(A->fun(), B.varTerm(Param));
    EditMap E;
    E.Terms[A] = B.app(B.val(B.lam(Param, EtaBody)), A->arg());
    return rewriteTerm(Ctx, T, E);
  }
  }
}

} // namespace

std::optional<std::string> Mutator::mutate(const std::string &Source) {
  Context Ctx;
  Result<const Term *> Raw = parseSugaredProgram(Ctx, Source);
  if (!Raw)
    return std::nullopt;
  // Mutate the normalized form: every mutation site is then an ANF
  // shape, and the post-edit normalizeProgram only has to clean up the
  // edit itself.
  const Term *T = anf::normalizeProgram(Ctx, *Raw);

  uint64_t Edits = 1 + Random.below(3);
  for (uint64_t I = 0; I < Edits; ++I) {
    // A drawn mutation can be inapplicable (e.g. no numerals to perturb);
    // give each edit a few redraws before settling for fewer edits.
    for (int Attempt = 0; Attempt < 4; ++Attempt) {
      if (const Term *M = mutateOnce(Ctx, T, Random)) {
        T = M;
        break;
      }
    }
  }
  T = anf::normalizeProgram(Ctx, T);
  return print(Ctx, T);
}

std::optional<std::string> Mutator::crossover(const std::string &A,
                                              const std::string &B) {
  Context Ctx;
  Result<const Term *> RawA = parseSugaredProgram(Ctx, A);
  Result<const Term *> RawB = parseSugaredProgram(Ctx, B);
  if (!RawA || !RawB)
    return std::nullopt;
  const Term *TA = anf::normalizeProgram(Ctx, *RawA);
  const Term *TB = anf::normalizeProgram(Ctx, *RawB);

  // Graft B in place of the body under a prefix of A's let spine.
  std::vector<const syntax::LetTerm *> Spine;
  const Term *Walk = TA;
  while (const auto *L = dyn_cast<LetTerm>(Walk)) {
    Spine.push_back(L);
    Walk = L->body();
  }
  if (Spine.empty())
    return print(Ctx, TB);
  const LetTerm *Cut = Spine[Random.below(Spine.size())];
  EditMap E;
  E.Terms[Cut->body()] = TB;
  const Term *T = rewriteTerm(Ctx, TA, E);
  T = anf::normalizeProgram(Ctx, T);
  return print(Ctx, T);
}

} // namespace fuzz
} // namespace cpsflow
