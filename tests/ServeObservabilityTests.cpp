//===- tests/ServeObservabilityTests.cpp - Serve observability --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability contract of `cpsflow serve` (docs/OBSERVABILITY.md):
/// the `metrics` op exposes the registry in both JSON and Prometheus
/// text format and its counters satisfy admitted == responded + shed +
/// failed once every response has been received; every admitted analyze
/// request (including sheds and fault-injected failures) produces
/// exactly one well-formed request-log record; analyze response payloads
/// are byte-identical with observability on and off; the flight
/// recorder's dump frame round-trips through its checksum; and slow
/// requests retroactively spill a Chrome trace, bounded by the cap.
///
//===----------------------------------------------------------------------===//

#include "serve/FlightRecorder.h"
#include "serve/Protocol.h"
#include "serve/RequestLog.h"
#include "serve/Server.h"
#include "support/FaultInjector.h"
#include "support/JsonParse.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::serve;
namespace fs = std::filesystem;

namespace {

/// A blocking line-protocol client with a receive timeout, so a daemon
/// bug can fail a test instead of wedging the suite.
class TestClient {
public:
  bool connectTo(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    timeval Tv{10, 0};
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }

  ~TestClient() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool sendLine(const std::string &Line) {
    std::string Out = Line;
    Out.push_back('\n');
    size_t Sent = 0;
    while (Sent < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Sent, Out.size() - Sent,
                         MSG_NOSIGNAL);
      if (N <= 0)
        return false;
      Sent += static_cast<size_t>(N);
    }
    return true;
  }

  /// One response line, or "" on timeout/close.
  std::string recvLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      char Chunk[4096];
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        return {};
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  std::string roundTrip(const std::string &Line) {
    if (!sendLine(Line))
      return {};
    return recvLine();
  }

private:
  int Fd = -1;
  std::string Buf;
};

/// Starts a daemon on a unique socket per test, with a request log and
/// flight recorder parked in the same throwaway directory.
class ServeObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    const char *Name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    Base = fs::temp_directory_path() /
           ("cpsflow-serve-obs-" + std::to_string(::getpid()) + "-" + Name);
    fs::remove_all(Base);
    fs::create_directories(Base);
    Opts.SocketPath = (Base / "s.sock").string();
  }
  void TearDown() override {
    Server.reset();
    fs::remove_all(Base);
  }

  void start() {
    Server = std::make_unique<serve::Server>(Opts);
    Result<bool> R = Server->start();
    ASSERT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.error().str());
  }

  JsonValue parsed(const std::string &Line) {
    Result<JsonValue> Doc = parseJson(Line);
    EXPECT_TRUE(Doc.hasValue()) << "not JSON: " << Line;
    return Doc.hasValue() ? Doc.take() : JsonValue();
  }

  static bool isOk(const JsonValue &Doc) {
    const JsonValue *Ok = Doc.find("ok");
    return Ok && Ok->asBool();
  }

  static std::string errorKind(const JsonValue &Doc) {
    const JsonValue *Err = Doc.find("error");
    const JsonValue *Kind = Err ? Err->find("kind") : nullptr;
    return Kind ? Kind->asString() : "";
  }

  /// Reads the metric \p Name from a `metrics` op JSON response, or -1.
  static double metricOf(const JsonValue &Doc, const char *Name) {
    const JsonValue *M = Doc.find("metrics");
    const JsonValue *V = M ? M->find(Name) : nullptr;
    return V && V->isNumber() ? V->asNumber() : -1;
  }

  /// Non-empty lines of a request log file, oldest first.
  static std::vector<std::string> logLines(const fs::path &P) {
    std::vector<std::string> Lines;
    std::ifstream In(P);
    std::string Line;
    while (std::getline(In, Line))
      if (!Line.empty())
        Lines.push_back(Line);
    return Lines;
  }

  fs::path Base;
  ServeOptions Opts;
  std::unique_ptr<serve::Server> Server;
};

const char *const Program = "(let (x 2) (+ x 3))";

std::string analyzeReq(const std::string &Program,
                       const std::string &Extra = "") {
  std::string P;
  for (char C : Program) {
    if (C == '"' || C == '\\')
      P.push_back('\\');
    P.push_back(C);
  }
  return "{\"op\":\"analyze\",\"program\":\"" + P + "\"" + Extra + "}";
}

/// One line of the Prometheus text exposition: a comment, or
/// `name{labels} value`.
bool validExpositionLine(const std::string &Line) {
  if (Line.empty())
    return false;
  if (Line[0] == '#')
    return true;
  size_t I = 0;
  auto NameStart = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == ':';
  };
  if (!NameStart(Line[I]))
    return false;
  while (I < Line.size() &&
         (NameStart(Line[I]) || (Line[I] >= '0' && Line[I] <= '9')))
    ++I;
  if (I < Line.size() && Line[I] == '{') {
    size_t Close = Line.find('}', I);
    if (Close == std::string::npos)
      return false;
    I = Close + 1;
  }
  if (I >= Line.size() || Line[I] != ' ')
    return false;
  std::string Value = Line.substr(I + 1);
  if (Value == "+Inf" || Value == "NaN")
    return true;
  char *End = nullptr;
  std::strtod(Value.c_str(), &End);
  return End && *End == '\0' && End != Value.c_str();
}

//===----------------------------------------------------------------------===//
// Registry units: gauges, windowed histograms, Prometheus rendering
//===----------------------------------------------------------------------===//

TEST(MetricsObservability, GaugeIsPointInTimeAndMergesByMax) {
  support::MetricsRegistry A, B;
  A.setGauge("queue.depth", 7);
  A.setGauge("queue.depth", 3); // gauges overwrite, not accumulate
  EXPECT_EQ(A.gauge("queue.depth"), 3u);
  B.setGauge("queue.depth", 5);
  A.merge(B); // merge takes the max — a high-water view
  EXPECT_EQ(A.gauge("queue.depth"), 5u);
}

TEST(MetricsObservability, WindowedHistogramForgetsOldGenerations) {
  support::MetricsRegistry R;
  support::WindowedHistogram &W = R.windowed("lat", /*WindowSamples=*/4);
  for (int I = 0; I < 4; ++I)
    W.record(1000); // slow generation fills the window and rotates to Prev
  EXPECT_EQ(W.snapshot().count(), 4u);
  EXPECT_EQ(W.snapshot().max(), 1000u);
  for (int I = 0; I < 2; ++I)
    W.record(1); // partial fast generation: both visible
  EXPECT_EQ(W.snapshot().count(), 6u);
  for (int I = 0; I < 2; ++I)
    W.record(1); // fast generation completes: slow generation evicted
  support::Histogram S = W.snapshot();
  EXPECT_EQ(S.count(), 4u);
  EXPECT_LT(S.max(), 1000u) << "evicted generation still visible";
  EXPECT_EQ(W.totalRecorded(), 8u); // lifetime total keeps counting
}

TEST(MetricsObservability, PrometheusSeriesSplitsLabelsAndSanitizes) {
  support::MetricsRegistry::PromSeries P =
      support::MetricsRegistry::prometheusSeries(
          "serve.latency.window.us{analyzer=\"direct\"}", "cpsflow_");
  EXPECT_EQ(P.Metric, "cpsflow_serve_latency_window_us");
  EXPECT_EQ(P.Labels, "analyzer=\"direct\"");
  support::MetricsRegistry::PromSeries Q =
      support::MetricsRegistry::prometheusSeries("serve.ok", "cpsflow_");
  EXPECT_EQ(Q.Metric, "cpsflow_serve_ok");
  EXPECT_EQ(Q.Labels, "");
}

TEST(MetricsObservability, WritePrometheusEmitsValidTypedFamilies) {
  support::MetricsRegistry R;
  R.add("serve.ok", 3);
  R.setGauge("serve.queue.depth", 2);
  R.histogram("serve.latencyUs").record(100);
  R.windowed("serve.latency.window.us{analyzer=\"direct\"}", 8).record(50);
  R.windowed("serve.latency.window.us{analyzer=\"dup\"}", 8).record(70);
  std::ostringstream Os;
  R.writePrometheus(Os);
  std::istringstream In(Os.str());
  std::string Line;
  int TypeCounter = 0, TypeGauge = 0, TypeHistogram = 0, Data = 0;
  int WindowTypeLines = 0;
  while (std::getline(In, Line)) {
    ASSERT_TRUE(validExpositionLine(Line)) << "bad line: " << Line;
    if (Line.rfind("# TYPE", 0) == 0) {
      if (Line.find(" counter") != std::string::npos)
        ++TypeCounter;
      if (Line.find(" gauge") != std::string::npos)
        ++TypeGauge;
      if (Line.find(" histogram") != std::string::npos)
        ++TypeHistogram;
      if (Line.find("cpsflow_serve_latency_window_us ") != std::string::npos)
        ++WindowTypeLines;
    } else if (Line[0] != '#') {
      ++Data;
    }
  }
  EXPECT_EQ(TypeCounter, 1);
  EXPECT_EQ(TypeGauge, 1);
  EXPECT_EQ(TypeHistogram, 2);
  // Both labeled series share one family: exactly one TYPE line.
  EXPECT_EQ(WindowTypeLines, 1);
  EXPECT_GT(Data, 6); // buckets + sum + count + scalars
  // Histogram families end with the canonical +Inf bucket.
  EXPECT_NE(Os.str().find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(Os.str().find("cpsflow_serve_latencyUs_sum"), std::string::npos)
      << Os.str();
}

//===----------------------------------------------------------------------===//
// Request-log units: record shape, rotation
//===----------------------------------------------------------------------===//

TEST(RequestLogUnit, RenderedRecordHasStableSchemaAndFieldOrder) {
  RequestRecord R;
  R.ReqId = 7;
  R.ClientId = 42;
  R.HasClientId = true;
  R.Analyzer = "direct";
  R.Domain = "constant";
  R.SourceLen = 19;
  R.SourceDigest = 0xdeadbeefull;
  R.Outcome = "degraded";
  R.DegradeReason = "deadline";
  R.CacheOutcome = "miss";
  R.Goals = 5;
  R.QueueUs = 12.25;
  R.TotalUs = 99.5;
  R.Worker = 1;
  std::string Line = renderRequestRecord(R);
  EXPECT_EQ(Line.find("{\"schema\":1,\"req\":7,\"id\":42,"), 0u) << Line;
  // Field order is part of the schema: timings always in queue -> parse
  // -> cps -> analyze -> total order, so log consumers can stream-parse.
  size_t Q = Line.find("\"queueUs\":12.2");
  size_t P = Line.find("\"parseUs\":");
  size_t C = Line.find("\"cpsUs\":");
  size_t A = Line.find("\"analyzeUs\":");
  size_t T = Line.find("\"totalUs\":99.5");
  ASSERT_NE(Q, std::string::npos) << Line;
  ASSERT_NE(T, std::string::npos) << Line;
  EXPECT_TRUE(Q < P && P < C && C < A && A < T) << Line;
  EXPECT_NE(Line.find("\"outcome\":\"degraded\""), std::string::npos);
  EXPECT_NE(Line.find("\"degradeReason\":\"deadline\""), std::string::npos);
  EXPECT_NE(Line.find("\"cache\":\"miss\""), std::string::npos);
  EXPECT_NE(Line.find("\"sourceDigest\":\"00000000deadbeef\""),
            std::string::npos);
  // Empty optionals are omitted, not rendered as empty strings.
  EXPECT_EQ(Line.find("errorKind"), std::string::npos);
  EXPECT_EQ(Line.find("slowTrace"), std::string::npos);
  // And every record parses back as JSON.
  EXPECT_TRUE(parseJson(Line).hasValue()) << Line;
}

TEST(RequestLogUnit, RotationKeepsTwoGenerationsAndCountsThem) {
  fs::path Dir = fs::temp_directory_path() /
                 ("cpsflow-obs-rot-" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  fs::path P = Dir / "req.log";
  {
    RequestLog Log(P.string(), /*RotateBytes=*/512);
    ASSERT_TRUE(Log.ok());
    RequestRecord R;
    R.Analyzer = "direct";
    R.Domain = "constant";
    R.Outcome = "ok";
    for (uint64_t I = 1; I <= 40; ++I) {
      R.ReqId = I;
      Log.append(R);
    }
    EXPECT_EQ(Log.written(), 40u);
    EXPECT_EQ(Log.failures(), 0u);
    EXPECT_GT(Log.rotations(), 0u);
  }
  EXPECT_TRUE(fs::exists(P));
  EXPECT_TRUE(fs::exists(Dir / "req.log.1"));
  // The freshest records are in FILE; every surviving line is intact.
  std::ifstream In(P);
  std::string Line, Last;
  while (std::getline(In, Line)) {
    EXPECT_TRUE(parseJson(Line).hasValue()) << Line;
    Last = Line;
  }
  EXPECT_NE(Last.find("\"req\":40"), std::string::npos) << Last;
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Flight-recorder units: ring, frame checksum, crash path
//===----------------------------------------------------------------------===//

TEST(FlightRecorderUnit, RingEvictsOldestAndTracksInFlight) {
  FlightRecorder F(2);
  RequestRecord R;
  R.Analyzer = "direct";
  for (uint64_t I = 1; I <= 3; ++I) {
    R.ReqId = I;
    F.admit(R);
  }
  EXPECT_EQ(F.inFlightCount(), 3u);
  EXPECT_EQ(F.admitted(), 3u);
  for (uint64_t I = 1; I <= 3; ++I) {
    R.ReqId = I;
    R.Outcome = "ok";
    F.complete(R);
  }
  EXPECT_EQ(F.inFlightCount(), 0u);
  EXPECT_EQ(F.recentCount(), 2u); // capacity 2: request 1 evicted
  std::string Doc = F.renderJson();
  EXPECT_EQ(Doc.find("req\":1"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"req\":2"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"req\":3"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"schemaVersion\":1"), std::string::npos) << Doc;
}

TEST(FlightRecorderUnit, DumpFrameRoundTripsAndDetectsTampering) {
  fs::path Dir = fs::temp_directory_path() /
                 ("cpsflow-obs-frame-" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  fs::path P = Dir / "dump.json";
  FlightRecorder F(4);
  RequestRecord R;
  R.ReqId = 1;
  R.Analyzer = "pushdown";
  F.admit(R);
  R.Outcome = "ok";
  F.complete(R);
  ASSERT_TRUE(F.dumpTo(P.string()));
  std::ifstream In(P, std::ios::binary);
  std::string Raw((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  std::string Payload;
  ASSERT_TRUE(FlightRecorder::checkFrame(Raw, &Payload)) << Raw;
  Result<JsonValue> Doc = parseJson(Payload);
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_EQ(Doc->numberOr("schemaVersion", 0), 1);
  EXPECT_EQ(Doc->numberOr("capacity", 0), 4);
  // Flip one payload byte: the checksum must catch it.
  std::string Tampered = Raw;
  Tampered[Tampered.size() - 2] ^= 0x20;
  EXPECT_FALSE(FlightRecorder::checkFrame(Tampered, nullptr));
  // Truncation (a torn write) is equally detectable.
  EXPECT_FALSE(
      FlightRecorder::checkFrame(Raw.substr(0, Raw.size() / 2), nullptr));
  fs::remove_all(Dir);
}

TEST(FlightRecorderUnit, FatalDumpWritesAFrameWithoutAllocating) {
  fs::path Dir = fs::temp_directory_path() /
                 ("cpsflow-obs-fatal-" + std::to_string(::getpid()));
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  fs::path P = Dir / "crash.json";
  FlightRecorder F(4);
  RequestRecord R;
  R.ReqId = 9;
  R.Analyzer = "direct";
  F.admit(R); // still in flight at "crash" time
  F.fatalDump(P.string().c_str());
  std::ifstream In(P, std::ios::binary);
  std::string Raw((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  std::string Payload;
  ASSERT_TRUE(FlightRecorder::checkFrame(Raw, &Payload)) << Raw;
  EXPECT_NE(Payload.find("\"req\":9"), std::string::npos) << Payload;
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Daemon-level: metrics op, invariants, logs, dump op, slow traces
//===----------------------------------------------------------------------===//

TEST_F(ServeObsTest, MetricsOpServesJsonAndPrometheusConsistently) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
  // One parse failure is still an admitted (and responded-to) request...
  JsonValue Bad = parsed(C.roundTrip(analyzeReq("(let (x")));
  EXPECT_FALSE(isOk(Bad));
  EXPECT_EQ(errorKind(Bad), "parse");

  JsonValue M = parsed(C.roundTrip("{\"op\":\"metrics\",\"id\":5}"));
  ASSERT_TRUE(isOk(M));
  EXPECT_EQ(M.numberOr("id", 0), 5);
  double Admitted = metricOf(M, "serve.analyze.admitted");
  double Responded = metricOf(M, "serve.analyze.responded");
  double Shed = metricOf(M, "serve.shed");
  double Failed = metricOf(M, "serve.analyze.failed");
  ASSERT_GE(Admitted, 0);
  ASSERT_GE(Responded, 0);
  ASSERT_GE(Shed, 0);
  ASSERT_GE(Failed, 0);
  EXPECT_EQ(Admitted, 4);
  // All responses received on this connection: the books must balance.
  EXPECT_EQ(Admitted, Responded + Shed + Failed);
  EXPECT_EQ(Failed, 1); // ...counted under failed, kind parse
  EXPECT_EQ(metricOf(M, "serve.error.parse"), 1);
  // Gauges are present even at idle.
  EXPECT_EQ(metricOf(M, "serve.queue.depth"), 0);
  EXPECT_EQ(metricOf(M, "serve.workers"), Opts.Workers);

  JsonValue P =
      parsed(C.roundTrip("{\"op\":\"metrics\",\"format\":\"prometheus\"}"));
  ASSERT_TRUE(isOk(P));
  EXPECT_EQ(P.find("contentType")->asString(),
            "text/plain; version=0.0.4");
  std::istringstream Body(P.find("body")->asString());
  std::string Line;
  int Data = 0;
  bool SawAdmitted = false, SawWindow = false;
  while (std::getline(Body, Line)) {
    ASSERT_TRUE(validExpositionLine(Line)) << "bad line: " << Line;
    if (Line[0] != '#')
      ++Data;
    if (Line.rfind("cpsflow_serve_analyze_admitted 4", 0) == 0)
      SawAdmitted = true;
    if (Line.find("cpsflow_serve_latency_window_us") != std::string::npos &&
        Line.find("analyzer=\"direct\"") != std::string::npos)
      SawWindow = true;
  }
  EXPECT_GT(Data, 20);
  EXPECT_TRUE(SawAdmitted);
  EXPECT_TRUE(SawWindow) << "per-analyzer windowed latency missing";
}

TEST_F(ServeObsTest, FormatFieldIsAProtocolErrorOutsideMetrics) {
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  JsonValue D =
      parsed(C.roundTrip("{\"op\":\"health\",\"format\":\"prometheus\"}"));
  EXPECT_FALSE(isOk(D));
  EXPECT_EQ(errorKind(D), "protocol");
  JsonValue Bad =
      parsed(C.roundTrip("{\"op\":\"metrics\",\"format\":\"xml\"}"));
  EXPECT_FALSE(isOk(Bad));
  EXPECT_EQ(errorKind(Bad), "protocol");
}

TEST_F(ServeObsTest, StatsExposesMemoAndCacheCountersUniformly) {
  // Satellite contract: the stats surface carries serve.memo.* and
  // serve.cache.* keys whether or not the features are enabled, so
  // dashboards never see a key flap.
  Opts.Incremental = false;
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  JsonValue D = parsed(C.roundTrip("{\"op\":\"stats\"}"));
  ASSERT_TRUE(isOk(D));
  const JsonValue *S = D.find("stats");
  ASSERT_NE(S, nullptr);
  for (const char *Key :
       {"serve.memo.tables", "serve.memo.entries", "serve.memo.replayHits",
        "serve.cache.hits", "serve.cache.misses", "serve.queue.depth",
        "serve.log.written", "serve.flight.capacity"})
    EXPECT_NE(S->find(Key), nullptr) << "stats missing " << Key;
  EXPECT_EQ(S->numberOr("serve.memo.tables", -1), 0);
  EXPECT_EQ(S->numberOr("serve.cache.hits", -1), 0);
}

TEST_F(ServeObsTest, EveryAdmittedRequestGetsExactlyOneLogRecord) {
  Opts.LogPath = (Base / "req.log").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  const int Good = 4;
  for (int I = 0; I < Good; ++I)
    ASSERT_TRUE(isOk(parsed(C.roundTrip(
        analyzeReq(Program, ",\"id\":" + std::to_string(100 + I))))));
  ASSERT_FALSE(isOk(parsed(C.roundTrip(analyzeReq("(oops")))));
  // Protocol garbage is rejected before admission: no log record.
  ASSERT_FALSE(isOk(parsed(C.roundTrip("{\"op\":\"nope\"}"))));
  Server->requestDrain();
  Server->waitDrained();

  std::vector<std::string> Lines = logLines(Opts.LogPath);
  ASSERT_EQ(Lines.size(), static_cast<size_t>(Good + 1));
  std::vector<bool> SeenReq(Good + 2, false);
  for (const std::string &L : Lines) {
    Result<JsonValue> Doc = parseJson(L);
    ASSERT_TRUE(Doc.hasValue()) << L;
    EXPECT_EQ(Doc->numberOr("schema", 0),
              RequestLogSchemaVersion);
    uint64_t Req =
        static_cast<uint64_t>(Doc->numberOr("req", 0));
    ASSERT_GE(Req, 1u);
    ASSERT_LE(Req, static_cast<uint64_t>(Good + 1));
    EXPECT_FALSE(SeenReq[Req]) << "duplicate record for req " << Req;
    SeenReq[Req] = true;
    std::string Outcome = Doc->find("outcome")->asString();
    if (Outcome == "failed")
      EXPECT_EQ(Doc->find("errorKind")->asString(), "parse") << L;
    else
      EXPECT_EQ(Outcome, "ok") << L;
    EXPECT_GT(Doc->numberOr("totalUs", -1), 0) << L;
    EXPECT_NE(Doc->find("sourceDigest"), nullptr);
  }
  for (int I = 1; I <= Good + 1; ++I)
    EXPECT_TRUE(SeenReq[I]) << "no record for req " << I;
}

TEST_F(ServeObsTest, AnalyzeResponsesAreByteIdenticalWithObservabilityOff) {
  // Observability must never leak into the answer payload: run the same
  // requests against a fully-instrumented daemon and a bare one.
  std::vector<std::string> Requests;
  for (const char *Analyzer : {"direct", "dup", "pushdown"})
    Requests.push_back(analyzeReq(
        Program, std::string(",\"analyzer\":\"") + Analyzer + "\""));
  Requests.push_back(analyzeReq("(oops")); // failure payloads too

  std::vector<std::string> WithObs, WithoutObs;
  {
    Opts.LogPath = (Base / "req.log").string();
    Opts.FlightRecords = 16;
    Opts.TraceSlowMs = 0.000001; // everything is "slow": traces on
    Opts.TraceSlowMax = 8;
    start();
    TestClient C;
    ASSERT_TRUE(C.connectTo(Opts.SocketPath));
    for (const std::string &R : Requests)
      WithObs.push_back(C.roundTrip(R));
    Server.reset();
  }
  {
    ServeOptions Bare;
    Bare.SocketPath = (Base / "bare.sock").string();
    Bare.LogPath.clear();
    Bare.FlightRecords = 0;
    Bare.TraceSlowMs = 0;
    Server = std::make_unique<serve::Server>(Bare);
    Result<bool> R = Server->start();
    ASSERT_TRUE(R.hasValue());
    TestClient C;
    ASSERT_TRUE(C.connectTo(Bare.SocketPath));
    for (const std::string &Req : Requests)
      WithoutObs.push_back(C.roundTrip(Req));
  }
  ASSERT_EQ(WithObs.size(), WithoutObs.size());
  for (size_t I = 0; I < WithObs.size(); ++I)
    EXPECT_EQ(WithObs[I], WithoutObs[I]) << "request " << I;
}

TEST_F(ServeObsTest, DumpOpPublishesACheckableFrame) {
  Opts.FlightRecords = 8;
  Opts.FlightDumpPath = (Base / "flight.json").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
  JsonValue D = parsed(C.roundTrip("{\"op\":\"dump\",\"id\":3}"));
  ASSERT_TRUE(isOk(D));
  EXPECT_EQ(D.numberOr("id", 0), 3);
  EXPECT_TRUE(D.find("enabled")->asBool());
  EXPECT_TRUE(D.find("written")->asBool());
  const JsonValue *Flight = D.find("flight");
  ASSERT_NE(Flight, nullptr);
  EXPECT_EQ(Flight->numberOr("schemaVersion", 0),
            FlightRecorderSchemaVersion);
  EXPECT_GE(Flight->numberOr("admitted", 0), 1);

  std::ifstream In(Opts.FlightDumpPath, std::ios::binary);
  std::string Raw((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  std::string Payload;
  ASSERT_TRUE(FlightRecorder::checkFrame(Raw, &Payload)) << Raw;
  EXPECT_NE(Payload.find("\"analyzer\":\"direct\""), std::string::npos)
      << Payload;
}

TEST_F(ServeObsTest, DumpOpReportsDisabledWithoutARecorder) {
  Opts.FlightRecords = 0;
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  JsonValue D = parsed(C.roundTrip("{\"op\":\"dump\"}"));
  ASSERT_TRUE(isOk(D));
  EXPECT_FALSE(D.find("enabled")->asBool());
}

TEST_F(ServeObsTest, DrainDumpsTheFlightRecorder) {
  Opts.FlightRecords = 8;
  Opts.FlightDumpPath = (Base / "drain-flight.json").string();
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
  Server->requestDrain();
  Server->waitDrained();
  std::ifstream In(Opts.FlightDumpPath, std::ios::binary);
  std::string Raw((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  ASSERT_TRUE(FlightRecorder::checkFrame(Raw, nullptr)) << Raw;
}

TEST_F(ServeObsTest, SlowRequestsSpillBoundedChromeTraces) {
  Opts.LogPath = (Base / "req.log").string();
  Opts.TraceSlowMs = 0.000001; // every request overshoots
  Opts.TraceDir = (Base / "traces").string();
  Opts.TraceSlowMax = 2;
  Opts.Workers = 1; // deterministic: one tracer, sequential spills
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(isOk(parsed(C.roundTrip(analyzeReq(Program)))));
  JsonValue M = parsed(C.roundTrip("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(isOk(M));
  EXPECT_EQ(metricOf(M, "serve.trace.captured"), 2);
  EXPECT_EQ(metricOf(M, "serve.trace.dropped"), 2);
  Server->requestDrain();
  Server->waitDrained();

  // Exactly TraceSlowMax files, each a Chrome trace with phase spans.
  size_t Files = 0;
  for (const auto &E : fs::directory_iterator(Opts.TraceDir)) {
    ++Files;
    std::ifstream In(E.path());
    std::string Raw((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
    Result<JsonValue> Doc = parseJson(Raw);
    ASSERT_TRUE(Doc.hasValue()) << E.path();
    EXPECT_NE(Doc->find("traceEvents"), nullptr);
    EXPECT_NE(Raw.find("analyze:direct"), std::string::npos) << Raw;
    EXPECT_NE(Raw.find("\"parse\""), std::string::npos) << Raw;
  }
  EXPECT_EQ(Files, 2u);

  // The first two log records carry the spill path; later ones do not.
  std::vector<std::string> Lines = logLines(Opts.LogPath);
  ASSERT_EQ(Lines.size(), 4u);
  int WithTrace = 0;
  for (const std::string &L : Lines)
    if (L.find("\"slowTrace\":") != std::string::npos)
      ++WithTrace;
  EXPECT_EQ(WithTrace, 2);
}

TEST_F(ServeObsTest, SchemaVersionsAreStable) {
  EXPECT_EQ(RequestLogSchemaVersion, 1);
  EXPECT_EQ(FlightRecorderSchemaVersion, 1);
}

#ifdef CPSFLOW_FAULT_INJECTION

TEST_F(ServeObsTest, CountersBalanceAndLogsCoverFaultedRequests) {
  Opts.LogPath = (Base / "req.log").string();
  Opts.FlightRecords = 8;
  start();
  TestClient C;
  ASSERT_TRUE(C.connectTo(Opts.SocketPath));
  const int N = 6;
  int Failed = 0;
  {
    // Every second worker dispatch throws mid-request.
    fault::ScopedFault F(
        {fault::Site::ServeWorker, fault::Action::Throw, "", 0, 2, 0});
    for (int I = 0; I < N; ++I) {
      JsonValue D = parsed(C.roundTrip(analyzeReq(Program)));
      if (!isOk(D)) {
        ++Failed;
        EXPECT_EQ(errorKind(D), "internal");
      }
    }
  }
  EXPECT_GT(Failed, 0);
  JsonValue M = parsed(C.roundTrip("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(isOk(M));
  double Admitted = metricOf(M, "serve.analyze.admitted");
  EXPECT_EQ(Admitted, N);
  EXPECT_EQ(Admitted, metricOf(M, "serve.analyze.responded") +
                          metricOf(M, "serve.shed") +
                          metricOf(M, "serve.analyze.failed"));
  EXPECT_EQ(metricOf(M, "serve.analyze.failed"), Failed);
  Server->requestDrain();
  Server->waitDrained();

  std::vector<std::string> Lines = logLines(Opts.LogPath);
  ASSERT_EQ(Lines.size(), static_cast<size_t>(N));
  int LoggedFailed = 0;
  for (const std::string &L : Lines) {
    Result<JsonValue> Doc = parseJson(L);
    ASSERT_TRUE(Doc.hasValue()) << L;
    if (Doc->find("outcome")->asString() == "failed") {
      ++LoggedFailed;
      EXPECT_EQ(Doc->find("errorKind")->asString(), "internal") << L;
    }
  }
  EXPECT_EQ(LoggedFailed, Failed);
}

TEST_F(ServeObsTest, ShedRequestsAreCountedAndLogged) {
  Opts.LogPath = (Base / "req.log").string();
  Opts.Workers = 1;
  Opts.QueueCap = 1;
  start();
  TestClient Stalled, Fast;
  ASSERT_TRUE(Stalled.connectTo(Opts.SocketPath));
  ASSERT_TRUE(Fast.connectTo(Opts.SocketPath));
  // Poll the queue gauges over the (never-queueing) metrics op.
  auto QueueState = [&](const char *Gauge) {
    JsonValue M = parsed(Fast.roundTrip("{\"op\":\"metrics\"}"));
    return metricOf(M, Gauge);
  };
  int Shed = 0, Ok = 0;
  {
    // Wedge the single worker on the first request, fill the queue with
    // the second, then watch the rest shed at admission. Sends are
    // sequenced on the observed gauges: request 2 must not race the
    // worker's pickup of request 1 (it would be shed itself), and the
    // fast requests below must not race the queueing of request 2.
    fault::ScopedFault F(
        {fault::Site::ServeWorker, fault::Action::Stall, "", 1, 0, 1200});
    ASSERT_TRUE(Stalled.sendLine(analyzeReq(Program)));
    for (int I = 0; I < 800 && QueueState("serve.queue.executing") < 1; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(QueueState("serve.queue.executing"), 1);
    ASSERT_TRUE(Stalled.sendLine(analyzeReq(Program)));
    for (int I = 0; I < 800 && QueueState("serve.queue.depth") < 1; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(QueueState("serve.queue.depth"), 1);
    for (int I = 0; I < 4; ++I) {
      JsonValue D = parsed(Fast.roundTrip(analyzeReq(Program)));
      if (errorKind(D) == "shed")
        ++Shed;
      else if (isOk(D))
        ++Ok;
    }
    // Unblock: collect the stalled answers so drain has nothing queued.
    ASSERT_FALSE(Stalled.recvLine().empty());
    ASSERT_FALSE(Stalled.recvLine().empty());
  }
  EXPECT_GT(Shed, 0) << "queue never saturated";
  JsonValue M = parsed(Fast.roundTrip("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(isOk(M));
  EXPECT_EQ(metricOf(M, "serve.shed"), Shed);
  double Admitted = metricOf(M, "serve.analyze.admitted");
  EXPECT_EQ(Admitted, 6);
  EXPECT_EQ(Admitted, metricOf(M, "serve.analyze.responded") +
                          metricOf(M, "serve.shed") +
                          metricOf(M, "serve.analyze.failed"));
  Server->requestDrain();
  Server->waitDrained();

  std::vector<std::string> Lines = logLines(Opts.LogPath);
  ASSERT_EQ(Lines.size(), 6u);
  int LoggedShed = 0;
  for (const std::string &L : Lines) {
    Result<JsonValue> Doc = parseJson(L);
    ASSERT_TRUE(Doc.hasValue()) << L;
    if (Doc->find("outcome")->asString() == "shed") {
      ++LoggedShed;
      EXPECT_EQ(Doc->find("errorKind")->asString(), "shed") << L;
    }
  }
  EXPECT_EQ(LoggedShed, Shed);
}

#endif // CPSFLOW_FAULT_INJECTION

} // namespace
