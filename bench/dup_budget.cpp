//===- bench/dup_budget.cpp - E9: bounded duplication -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E9 — Section 6.3's conclusion: "in practice, a direct data flow
/// analysis that relies on some amount of duplication would be as
/// satisfactory as a CPS analysis". Sweeps the duplication budget d of the
/// DupAnalyzer on the Theorem 5.2 witnesses and the call-merge chains,
/// reporting precision (the probe variables) and cost (proof goals)
/// against the Figure 4 and Figure 5 endpoints.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Workloads.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

template <typename ResultT>
int probesExact(const Context &Ctx, const ResultT &R, const Witness &W,
                const char *Expect) {
  int N = 0;
  for (Symbol B : W.InterestingVars)
    if (CD::str(R.valueOf(B).Num) == Expect)
      ++N;
  return N;
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E9: the Section 6.3 alternative — direct analysis with "
              "bounded duplication");

  {
    Witness W = gen::callMergeChain(Ctx, 5);
    auto Sem =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    std::printf("call-merge chain, n = 5 (probes b1..b5; exact value 5):\n");
    std::printf("  analyzer          | probes exact | goals\n");
    std::printf("  ------------------+--------------+------\n");
    for (uint32_t Budget = 0; Budget <= 5; ++Budget) {
      auto Dup =
          DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Budget).run();
      std::printf("  dup budget %u      | %4d of 5    | %llu\n", Budget,
                  probesExact(Ctx, Dup, W, "5"),
                  (unsigned long long)Dup.Stats.Goals);
    }
    std::printf("  semantic-CPS      | %4d of 5    | %llu\n",
                probesExact(Ctx, Sem, W, "5"),
                (unsigned long long)Sem.Stats.Goals);
  }

  std::printf("\ntheorem witnesses (a2 column):\n");
  std::printf("  witness        | fig 4 | dup d=1 | dup d=2 | semantic\n");
  std::printf("  ---------------+-------+---------+---------+---------\n");
  for (Witness (*Make)(Context &) : {theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    Symbol A2 = Ctx.intern("a2");
    auto F4 = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    auto D1 = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 1).run();
    auto D2 = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), 2).run();
    auto SM =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    std::printf("  %-14s | %-5s | %-7s | %-7s | %s\n", W.Name.c_str(),
                CD::str(F4.valueOf(A2).Num).c_str(),
                CD::str(D1.valueOf(A2).Num).c_str(),
                CD::str(D2.valueOf(A2).Num).c_str(),
                CD::str(SM.valueOf(A2).Num).c_str());
  }

  std::printf("\ncost control on a deep chain (conditional chain n = 14):\n");
  {
    Witness W = gen::conditionalChain(Ctx, 14);
    auto Sem =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
    std::printf("  semantic-CPS goals: %llu\n",
                (unsigned long long)Sem.Stats.Goals);
    for (uint32_t Budget : {0u, 1u, 2u, 3u}) {
      auto Dup =
          DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Budget).run();
      std::printf("  dup budget %u goals: %llu\n", Budget,
                  (unsigned long long)Dup.Stats.Goals);
    }
  }

  std::printf("\nexpected shape: a small budget recovers the CPS answers "
              "on the witnesses while the cost stays polynomial — the "
              "paper's recommended practical design point.\n");
  return 0;
}
