//===- cps/CpsIr.h - Flat label-arena CPS IR --------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, dense-u32-label lowering of a cps(A) program for the syntactic
/// analyzer's hot path. The pointer tree of CpsAst.h is the source of
/// truth (answers, CFGs, and provenance stay keyed by its nodes); this IR
/// is a derived view in which
///
///  * every CpsTerm is a record in one contiguous `Terms` array, so a
///    goal key is `(u32 label, StoreId)` packed into one u64 and goal
///    dispatch is an array index instead of a pointer chase;
///  * every CpsValue is a record in `Vals` with its variable slot (the
///    dense VarIndex id) pre-resolved, eliminating per-access Symbol
///    hash lookups;
///  * user lambdas and continuation lambdas live in id-sorted `Lams` /
///    `Conts` arrays whose positions coincide with the analyzer's
///    closure/continuation universe enumeration (Universe.cpp sorts the
///    same refs the same way), so a packed-set bit index dereferences
///    straight to the callee's parameter slots and body label.
///
/// Each record keeps the original node pointer (plus its id and source
/// location) for the cold paths: CFG recording, provenance attribution,
/// and converting packed answers back to `CpsCloRef`/`KontRef` sets.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CPS_CPSIR_H
#define CPSFLOW_CPS_CPSIR_H

#include "cps/Transform.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace cpsflow {
namespace cps {

struct CpsIr {
  enum class ValKind : uint8_t { Num, Var, Inck, Deck, Lam };

  struct ValNode {
    ValKind Kind = ValKind::Num;
    /// Var: dense store slot. Lam: index into `Lams`.
    uint32_t A = 0;
    /// Num: the literal.
    int64_t Num = 0;
    const CpsValue *Src = nullptr;
  };

  /// One CPS term. Operand meaning by kind:
  ///   Ret    A = kvar slot   B = arg val
  ///   LetVal A = var slot    B = bound val   C = body term
  ///   Call   A = fun val     B = arg val     C = cont index
  ///   If     A = kvar slot   B = cond val    C = then term
  ///          E = else term   J = join cont index
  ///   Loop   A = cont index
  /// Continuation indices use the kont-universe numbering: 0 is `stop`,
  /// index i > 0 is `Conts[i - 1]`.
  struct TermNode {
    CpsTermKind Kind = CpsTermKind::PK_Ret;
    uint32_t A = 0;
    uint32_t B = 0;
    uint32_t C = 0;
    uint32_t E = 0;
    uint32_t J = 0;
    uint32_t SrcId = 0;
    SourceLoc Loc;
    const CpsTerm *Src = nullptr;
  };

  /// One user lambda; closure-universe index = 2 + its position here
  /// (indices 0 and 1 are add1k / sub1k).
  struct LamNode {
    uint32_t ParamSlot = 0;
    uint32_t KParamSlot = 0;
    uint32_t Body = 0;
    const CpsLam *Src = nullptr;
  };

  /// One continuation lambda; kont-universe index = 1 + its position
  /// here (index 0 is `stop`).
  struct ContNode {
    uint32_t ParamSlot = 0;
    uint32_t Body = 0;
    uint32_t SrcId = 0;
    SourceLoc Loc;
    const ContLam *Src = nullptr;
  };

  std::vector<TermNode> Terms;
  std::vector<ValNode> Vals;
  std::vector<LamNode> Lams;
  std::vector<ContNode> Conts;
  uint32_t Root = 0;
};

/// Lowers \p Program (plus the extra lambdas seeded from initial
/// bindings, mirroring the analyzer's universe construction) into a flat
/// arena. \p SlotOf maps a variable to its dense store slot, or a
/// negative value when the variable is unknown; an unknown variable
/// aborts the lowering. \returns std::nullopt on failure — callers fall
/// back to the pointer-tree evaluator.
std::optional<CpsIr>
buildCpsIr(const CpsProgram &Program,
           const std::vector<const CpsLam *> &ExtraLams,
           const std::function<int64_t(Symbol)> &SlotOf);

} // namespace cps
} // namespace cpsflow

#endif // CPSFLOW_CPS_CPSIR_H
