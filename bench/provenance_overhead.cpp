//===- bench/provenance_overhead.cpp - E16: recorder cost -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E16 — the cost of the provenance recorder (domain/Provenance.h). Each
/// analyzer runs the E10 random workloads twice: with the recorder off
/// (AnalyzerOptions::Prov null — every hook is one predicted-false
/// pointer test, the same budget class as Metrics/Trace) and with a
/// recorder attached (the full `cpsflow explain` capture path: edge
/// arena, store origins, fact table, memo side-table).
///
/// The acceptance criterion for this PR is on the DISABLED path: the
/// BM_*Off lines must be indistinguishable from bench/throughput.cpp's
/// plain BM_* lines (within run-to-run noise), because the default
/// analyze/batch/fuzz paths all run with Prov == nullptr. The *On lines
/// document what `explain` itself costs; they have no budget, only a
/// trend to watch (EXPERIMENTS.md records the measured numbers).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "domain/Provenance.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"

#include <benchmark/benchmark.h>

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

const syntax::Term *makeProgram(Context &Ctx, int64_t Size) {
  gen::GenOptions Opts;
  Opts.Seed = 1010; // same corpus as bench/throughput.cpp (E10)
  Opts.ChainLength = static_cast<uint32_t>(Size);
  Opts.MaxDepth = 2;
  Opts.WellTyped = true;
  gen::ProgramGenerator Gen(Ctx, Opts);
  return Gen.generate();
}

template <template <typename> class Analyzer>
void analysisLoop(benchmark::State &State, bool Recorded) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  std::vector<DirectBinding<CD>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
  domain::Provenance Prov;
  AnalyzerOptions AOpts;
  if (Recorded)
    AOpts.Prov = &Prov;
  uint64_t Goals = 0, Edges = 0;
  for (auto _ : State) {
    Prov.reset();
    auto R = Analyzer<CD>(Ctx, T, Init, AOpts).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    Goals = R.Stats.Goals;
    Edges = Prov.size();
  }
  State.counters["goals"] = static_cast<double>(Goals);
  State.counters["edges"] = static_cast<double>(Edges);
}

void BM_DirectProvOff(benchmark::State &State) {
  analysisLoop<DirectAnalyzer>(State, false);
}
void BM_DirectProvOn(benchmark::State &State) {
  analysisLoop<DirectAnalyzer>(State, true);
}
void BM_SemanticProvOff(benchmark::State &State) {
  analysisLoop<SemanticCpsAnalyzer>(State, false);
}
void BM_SemanticProvOn(benchmark::State &State) {
  analysisLoop<SemanticCpsAnalyzer>(State, true);
}

void syntacticLoop(benchmark::State &State, bool Recorded) {
  Context Ctx;
  const syntax::Term *T = makeProgram(Ctx, State.range(0));
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  std::vector<CpsBinding<CD>> Init;
  for (Symbol S : syntax::freeVars(T))
    Init.push_back({S, domain::CpsAbsVal<CD>::number(CD::top())});
  domain::Provenance Prov;
  AnalyzerOptions AOpts;
  if (Recorded)
    AOpts.Prov = &Prov;
  uint64_t Goals = 0, Edges = 0;
  for (auto _ : State) {
    Prov.reset();
    auto R = SyntacticCpsAnalyzer<CD>(Ctx, *P, Init, AOpts).run();
    benchmark::DoNotOptimize(R.Answer.Value);
    Goals = R.Stats.Goals;
    Edges = Prov.size();
  }
  State.counters["goals"] = static_cast<double>(Goals);
  State.counters["edges"] = static_cast<double>(Edges);
}

void BM_SyntacticProvOff(benchmark::State &State) {
  syntacticLoop(State, false);
}
void BM_SyntacticProvOn(benchmark::State &State) {
  syntacticLoop(State, true);
}

} // namespace

BENCHMARK(BM_DirectProvOff)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_DirectProvOn)->RangeMultiplier(2)->Range(8, 64);
// The CPS analyzers pay the duplication cost even on random programs;
// cap their sweep so the run stays in CI-friendly time (as in E10).
BENCHMARK(BM_SemanticProvOff)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SemanticProvOn)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SyntacticProvOff)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_SyntacticProvOn)->RangeMultiplier(2)->Range(8, 32);

BENCHMARK_MAIN();
