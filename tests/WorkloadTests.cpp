//===- tests/WorkloadTests.cpp - Workload family behaviour ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Workloads.h"

#include "TestUtil.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "interp/Direct.h"
#include "syntax/Analysis.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using namespace cpsflow::gen;
using CD = domain::ConstantDomain;

namespace {

TEST(Workloads, AllFamiliesAreWellFormed) {
  Context Ctx;
  for (Witness W :
       {conditionalChain(Ctx, 3), callMergeChain(Ctx, 2), closureTower(Ctx, 3),
        loopProbe(Ctx, 2), omega(Ctx), counterLoop(Ctx, 2)}) {
    EXPECT_TRUE(anf::isAnf(W.Anf).hasValue()) << W.Name;
    EXPECT_TRUE(syntax::checkUniqueBinders(Ctx, W.Anf).hasValue()) << W.Name;
    EXPECT_NE(W.Cps.Root, nullptr) << W.Name;
  }
}

TEST(Workloads, ClosureTowerComputesNExactlyEverywhere) {
  Context Ctx;
  Witness W = closureTower(Ctx, 6);
  // Concretely: 6.
  interp::DirectInterp I;
  interp::RunResult R = I.run(W.Anf);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 6);
  // Abstractly: every analyzer keeps the constant.
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf).run();
  EXPECT_EQ(CD::str(AD.valueOf(W.Probe).Num), "6");
  auto AS = SemanticCpsAnalyzer<CD>(Ctx, W.Anf).run();
  EXPECT_EQ(CD::str(AS.valueOf(W.Probe).Num), "6");
  auto AC = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps).run();
  EXPECT_EQ(CD::str(AC.valueOf(W.Probe).Num), "6");
}

TEST(Workloads, CallMergeChainSeparatesTheAnalyses) {
  Context Ctx;
  Witness W = callMergeChain(Ctx, 3);
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AS =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AC = SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
  for (Symbol B : W.InterestingVars) {
    EXPECT_EQ(CD::str(AD.valueOf(B).Num), "T") << "direct";
    EXPECT_EQ(CD::str(AS.valueOf(B).Num), "5") << "semantic";
    EXPECT_EQ(CD::str(AC.valueOf(B).Num), "5") << "syntactic";
  }
}

TEST(Workloads, ConditionalChainProbeDegradesOnlyDirect) {
  Context Ctx;
  Witness W = conditionalChain(Ctx, 3);
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  EXPECT_EQ(CD::str(AD.valueOf(W.Probe).Num), "T");
  // The CPS analyses keep per-path constants, but the probe *joins* all
  // paths: acc_3 in {-3,-1,1,3} joins to T as well. Per-path precision
  // shows in the goal counts, checked in AnalyzerUnitTests.
  auto AS =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  EXPECT_EQ(CD::str(AS.valueOf(W.Probe).Num), "T");
}

TEST(Workloads, CounterLoopTerminatesConcretelyAndAbstractly) {
  Context Ctx;
  Witness W = counterLoop(Ctx, 8);
  interp::DirectInterp I;
  interp::RunResult R = I.run(W.Anf);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Value.Num, 0);

  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf).run();
  EXPECT_FALSE(AD.Stats.BudgetExhausted);
  EXPECT_TRUE(CD::leq(CD::constant(0), AD.Answer.Value.Num));
}

TEST(Workloads, OmegaDivergesConcretely) {
  Context Ctx;
  Witness W = omega(Ctx);
  interp::RunLimits Limits;
  Limits.MaxSteps = 5000;
  interp::DirectInterp I(Limits);
  EXPECT_EQ(I.run(W.Anf).Status, interp::RunStatus::OutOfFuel);
}

TEST(Workloads, LoopProbeShapes) {
  Context Ctx;
  Witness W = loopProbe(Ctx, 0); // probe directly on x
  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf).run();
  // x = naturals summary = T; r merges 7 and 9 to T.
  EXPECT_EQ(CD::str(AD.valueOf(W.Probe).Num), "T");
  EXPECT_FALSE(AD.Stats.LoopBounded);
}

} // namespace
