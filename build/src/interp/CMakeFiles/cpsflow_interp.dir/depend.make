# Empty dependencies file for cpsflow_interp.
# This may be replaced when dependencies are built.
