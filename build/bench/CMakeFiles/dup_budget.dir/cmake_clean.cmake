file(REMOVE_RECURSE
  "CMakeFiles/dup_budget.dir/dup_budget.cpp.o"
  "CMakeFiles/dup_budget.dir/dup_budget.cpp.o.d"
  "dup_budget"
  "dup_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dup_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
