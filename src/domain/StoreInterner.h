//===- domain/StoreInterner.h - Hash-consed abstract stores -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash-consing for abstract stores. One analysis run interns every
/// distinct store it ever constructs exactly once and thereafter names it
/// by a dense 32-bit StoreId. The analyzers' memo/active keys become
/// (node pointer, StoreId) — O(1) to build, hash, and compare — instead
/// of carrying a full dense store that is copied and rehashed O(|vars|)
/// at every proof goal.
///
/// Updates go through a copy-on-write join: `joinAt` returns the parent
/// id unchanged when the join does not move the slot (the common case in
/// the fixpoint tail of a run), and otherwise copies once, patches the
/// slot, and re-interns. The store hash is a *commutative* sum of
/// per-slot contributions (support/Hashing.h `hashSlot`), so a one-slot
/// update adjusts the hash in O(1) rather than rescanning the store.
///
/// Lifetime: an interner belongs to a single analyzer instance (the
/// analyzers are single-use) and owns every store it hands out; ids are
/// only meaningful against the interner that produced them. Interned
/// entries live in a deque, so `store()` references stay stable as the
/// table grows. Nothing is shared across threads — the batch driver
/// gives each worker its own Context and analyzers, hence its own
/// interners.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_STOREINTERNER_H
#define CPSFLOW_DOMAIN_STOREINTERNER_H

#include "domain/AbsStore.h"
#include "support/Hashing.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace cpsflow {
namespace domain {

/// A dense name for an interned store. Only meaningful together with the
/// StoreInterner that produced it; equal ids mean equal stores.
using StoreId = uint32_t;

/// Hash-consing table for AbsStore<V> values. See the file comment.
template <typename V> class StoreInterner {
public:
  using StoreT = AbsStore<V>;

  StoreInterner() : Dedup(16, IdHash{this}, IdEq{this}) {}

  /// (Re)initializes the table for a universe of \p NumVars variables and
  /// interns the all-bottom store as id 0.
  void reset(size_t NumVars) {
    Entries.clear();
    Dedup.clear();
    JoinCache.clear();
    Vars = NumVars;
    PeakBytes = 0;
    BottomId = intern(StoreT(NumVars));
    assert(BottomId == 0 && "bottom store must be the first entry");
  }

  /// When non-null, each *newly* interned store records its width (count
  /// of non-bottom slots) into \p M's "storeSlots" histogram — the
  /// distribution behind the Section 6.2 store-explosion counters. Costs
  /// one O(vars) scan per distinct store; null (the default) costs one
  /// predicted-false pointer test.
  void attachMetrics(support::MetricsRegistry *M) {
    SlotsHist = M ? &M->histogram("storeSlots") : nullptr;
  }

  /// The all-bottom store of this universe.
  StoreId bottom() const { return BottomId; }

  /// Number of distinct stores interned so far.
  size_t size() const { return Entries.size(); }

  /// O(1) estimate of the table's memory footprint: interned entries
  /// times the dense store width. Ignores per-slot heap payload (closure
  /// sets are bounded by the program-sized universe), which is fine for
  /// its one consumer — the resource governor's memory ceiling, where the
  /// quantity that actually explodes under Section 6.2 duplication is the
  /// *count* of distinct stores.
  size_t approxBytes() const {
    return Entries.size() * (sizeof(Entry) + Vars * sizeof(V));
  }

  /// Largest approxBytes() the table has reached. The table only grows
  /// today, but peak is tracked explicitly so the observability contract
  /// survives a future entry-evicting interner.
  size_t peakBytes() const { return std::max(PeakBytes, approxBytes()); }

  /// The dense store named by \p Id. The reference is stable for the
  /// interner's lifetime.
  const StoreT &store(StoreId Id) const {
    assert(Id < Entries.size() && "unknown store id");
    return Entries[Id].Store;
  }

  /// Precomputed hash of the store named by \p Id.
  uint64_t hashOf(StoreId Id) const {
    assert(Id < Entries.size() && "unknown store id");
    return Entries[Id].Hash;
  }

  /// Slot read through the id, the analyzers' phi accessor.
  const V &get(StoreId Id, uint32_t Slot) const { return store(Id).get(Slot); }

  /// Interns a dense store, returning the id of the canonical copy.
  StoreId intern(StoreT S) {
    uint64_t H = storeHash(S);
    return internWithHash(std::move(S), H);
  }

  /// sigma[x := sigma(x) join U], copy-on-write: when the join does not
  /// move the slot the parent id is returned as-is (no copy, no hashing);
  /// otherwise the store is copied once and the hash patched in O(1).
  StoreId joinAt(StoreId Base, uint32_t Slot, const V &U) {
    const Entry &E = Entries[Base];
    const V &Old = E.Store.get(Slot);
    V Joined = V::join(Old, U);
    if (Joined == Old)
      return Base;
    uint64_t H = E.Hash - hashSlot(Slot, Old.hashValue()) +
                 hashSlot(Slot, Joined.hashValue());
    StoreT S = E.Store;
    S.set(Slot, std::move(Joined));
    return internWithHash(std::move(S), H);
  }

  /// Pointwise join of two interned stores. Equal ids and joins against
  /// bottom are O(1); repeated pairs hit a memo (join is deterministic,
  /// so caching changes nothing observable); ordered pairs resolve by a
  /// comparison scan without constructing or hashing a joined store. Only
  /// a genuinely incomparable first-time pair pays join-plus-intern.
  StoreId join(StoreId A, StoreId B) {
    if (A == B)
      return A;
    if (A == BottomId)
      return B;
    if (B == BottomId)
      return A;
    // Join is commutative: one cache entry per unordered pair.
    uint64_t PairKey = A < B ? (static_cast<uint64_t>(A) << 32) | B
                             : (static_cast<uint64_t>(B) << 32) | A;
    if (auto It = JoinCache.find(PairKey); It != JoinCache.end())
      return It->second;
    StoreId R;
    if (StoreT::leq(store(A), store(B)))
      R = B;
    else if (StoreT::leq(store(B), store(A)))
      R = A;
    else
      R = intern(StoreT::join(store(A), store(B)));
    JoinCache.emplace(PairKey, R);
    return R;
  }

private:
  struct Entry {
    StoreT Store;
    uint64_t Hash;
  };

  /// Commutative full-store hash; must agree with the incremental update
  /// in joinAt.
  uint64_t storeHash(const StoreT &S) const {
    uint64_t H = 0xab5;
    for (uint32_t I = 0; I < S.size(); ++I)
      H += hashSlot(I, S.get(I).hashValue());
    return H;
  }

  StoreId internWithHash(StoreT S, uint64_t H) {
    assert(S.size() == Vars && "store from a different universe");
    // Lazy lookup: tentatively append, then dedup by id. Deques keep
    // references to other entries stable across the push/pop.
    Entries.push_back(Entry{std::move(S), H});
    StoreId Id = static_cast<StoreId>(Entries.size() - 1);
    auto [It, Inserted] = Dedup.insert(Id);
    if (!Inserted) {
      Entries.pop_back();
      return *It;
    }
    PeakBytes = std::max(PeakBytes, approxBytes());
    if (SlotsHist) {
      const StoreT &Canon = Entries[Id].Store;
      uint64_t Width = 0;
      for (uint32_t I = 0; I < Canon.size(); ++I)
        if (!(Canon.get(I) == V::bot()))
          ++Width;
      SlotsHist->record(Width);
    }
    return Id;
  }

  struct IdHash {
    const StoreInterner *In;
    size_t operator()(StoreId Id) const { return In->Entries[Id].Hash; }
  };
  struct IdEq {
    const StoreInterner *In;
    bool operator()(StoreId A, StoreId B) const {
      if (A == B)
        return true;
      const Entry &EA = In->Entries[A], &EB = In->Entries[B];
      return EA.Hash == EB.Hash && EA.Store == EB.Store;
    }
  };

  struct PairHash {
    size_t operator()(uint64_t K) const {
      return static_cast<size_t>(mix64(K));
    }
  };

  size_t Vars = 0;
  StoreId BottomId = 0;
  size_t PeakBytes = 0;
  support::Histogram *SlotsHist = nullptr;
  std::deque<Entry> Entries;
  std::unordered_set<StoreId, IdHash, IdEq> Dedup;
  std::unordered_map<uint64_t, StoreId, PairHash> JoinCache;
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_STOREINTERNER_H
