//===- syntax/Sugar.h - Surface-language desugaring -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small surface language over core A, desugared during parsing. The
/// paper presents A as "the core of typical higher-order languages like
/// Scheme, Lisp, and ML" (Section 2); this layer restores enough of the
/// surface to write realistic programs:
///
/// \code
///   (lambda (x y ...) M)        curried lambdas
///   (M N1 N2 ...)               curried application
///   (let* ((x M) (y M) ...) M)  sequential bindings
///   (+ M k) / (- M k)           add1/sub1 chains for integer literals k
///   (rec (f x) M)               recursion by self-application: f is in
///                               scope inside M
///   (define (f x y ...) M)      top-level curried definition
///   (define x M)                top-level value definition
/// \endcode
///
/// A *program* is a sequence of defines followed by one expression; it
/// desugars to nested lets. Everything else (numerals, variables, add1,
/// sub1, let, if0, loop) passes through to the core parser unchanged.
///
/// The result is ordinary core A: normalize, transform, interpret, and
/// analyze it with the rest of the library.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_SUGAR_H
#define CPSFLOW_SYNTAX_SUGAR_H

#include "support/Result.h"
#include "syntax/Ast.h"

#include <string_view>

namespace cpsflow {
namespace syntax {

/// Parses a single sugared expression.
Result<const Term *> parseSugaredTerm(Context &Ctx, std::string_view Source);

/// Parses a whole program: zero or more `define` forms followed by one
/// expression, desugared to nested lets around that expression.
Result<const Term *> parseSugaredProgram(Context &Ctx,
                                         std::string_view Source);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_SUGAR_H
