file(REMOVE_RECURSE
  "libcpsflow_anf.a"
)
