//===- domain/AbsStore.h - Abstract stores ----------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract stores (Section 4.1): after the 0CFA approximation, each
/// variable has exactly one location, so the store maps variables directly
/// to abstract values. Stores are dense vectors indexed through a VarIndex
/// (the fixed, per-program variable universe), making copy, join, compare,
/// and hash — all hot operations in the analyzers' memo tables — cheap
/// linear scans.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_ABSSTORE_H
#define CPSFLOW_DOMAIN_ABSSTORE_H

#include "support/Hashing.h"
#include "support/Symbol.h"

#include <cassert>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace cpsflow {
namespace domain {

/// The fixed variable universe of one analysis run: a bijection between
/// the variables a program (plus its initial store) can mention and dense
/// indices.
class VarIndex {
public:
  explicit VarIndex(const std::vector<Symbol> &Vars) {
    for (Symbol S : Vars)
      if (Lookup.emplace(S, static_cast<uint32_t>(Order.size())).second)
        Order.push_back(S);
  }

  size_t size() const { return Order.size(); }

  bool contains(Symbol S) const { return Lookup.count(S) != 0; }

  uint32_t of(Symbol S) const {
    auto It = Lookup.find(S);
    assert(It != Lookup.end() && "variable outside the analysis universe");
    return It->second;
  }

  /// Single-lookup variant of contains+of for variables that may be
  /// outside the universe.
  std::optional<uint32_t> tryOf(Symbol S) const {
    auto It = Lookup.find(S);
    if (It == Lookup.end())
      return std::nullopt;
    return It->second;
  }

  Symbol symbolAt(uint32_t I) const {
    assert(I < Order.size() && "index out of range");
    return Order[I];
  }

private:
  std::vector<Symbol> Order;
  std::unordered_map<Symbol, uint32_t> Lookup;
};

/// A dense abstract store over value type \p V (an AbsVal or CpsAbsVal
/// instantiation). All slots start at bottom.
template <typename V> class AbsStore {
public:
  AbsStore() = default;
  explicit AbsStore(size_t NumVars) : Slots(NumVars) {}

  size_t size() const { return Slots.size(); }

  const V &get(uint32_t I) const {
    assert(I < Slots.size() && "slot out of range");
    return Slots[I];
  }

  /// sigma[x := sigma(x) join U] — the only kind of update the abstract
  /// interpreters perform. \returns true if the slot changed.
  bool joinAt(uint32_t I, const V &U) {
    assert(I < Slots.size() && "slot out of range");
    V Joined = V::join(Slots[I], U);
    if (Joined == Slots[I])
      return false;
    Slots[I] = std::move(Joined);
    return true;
  }

  /// Destructive strong update; used only when seeding initial stores.
  void set(uint32_t I, V U) {
    assert(I < Slots.size() && "slot out of range");
    Slots[I] = std::move(U);
  }

  static AbsStore join(const AbsStore &A, const AbsStore &B) {
    assert(A.size() == B.size() && "joining stores of different universes");
    AbsStore Out(A.size());
    for (size_t I = 0; I < A.size(); ++I)
      Out.Slots[I] = V::join(A.Slots[I], B.Slots[I]);
    return Out;
  }

  static bool leq(const AbsStore &A, const AbsStore &B) {
    assert(A.size() == B.size() && "comparing stores of different universes");
    for (size_t I = 0; I < A.size(); ++I)
      if (!V::leq(A.Slots[I], B.Slots[I]))
        return false;
    return true;
  }

  friend bool operator==(const AbsStore &A, const AbsStore &B) {
    return A.Slots == B.Slots;
  }
  friend bool operator!=(const AbsStore &A, const AbsStore &B) {
    return !(A == B);
  }

  uint64_t hashValue() const {
    uint64_t H = 0xab5;
    for (const V &Slot : Slots)
      hashCombine(H, Slot.hashValue());
    return H;
  }

private:
  std::vector<V> Slots;
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_ABSSTORE_H
