//===- bench/incomparability_census.cpp - E8: census ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E8 — the Section 5.1 corollary in the large: over random programs, the
/// direct and syntactic-CPS constant-propagation analyses compare in every
/// possible way. The theorem witnesses are the two strict directions; the
/// census measures how often each verdict arises "in the wild" and on the
/// structured families that trigger each mechanism.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Generator.h"
#include "gen/Workloads.h"
#include "syntax/Analysis.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

namespace {

struct Tally {
  int Equal = 0, DirectWins = 0, CpsWins = 0, Incomparable = 0, Skipped = 0;

  void add(PrecisionOrder O) {
    switch (O) {
    case PrecisionOrder::Equal:
      ++Equal;
      break;
    case PrecisionOrder::LeftMorePrecise:
      ++DirectWins;
      break;
    case PrecisionOrder::RightMorePrecise:
      ++CpsWins;
      break;
    case PrecisionOrder::Incomparable:
      ++Incomparable;
      break;
    }
  }

  void print(const char *Label) const {
    int Total = Equal + DirectWins + CpsWins + Incomparable;
    std::printf("  %-24s | %5d | %6d | %6d | %6d | %5d\n", Label, Equal,
                DirectWins, CpsWins, Incomparable, Skipped);
    (void)Total;
  }
};

PrecisionOrder classify(const Context &Ctx, const Witness &W, bool &Skip) {
  auto AD =
      DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  auto AC =
      SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W)).run();
  Skip = !AD.Stats.complete() || !AC.Stats.complete();
  Comparison C = compareWithSyntactic<CD>(Ctx, AD, AC, W.Cps,
                                          W.InterestingVars);
  return C.Overall;
}

} // namespace

int main() {
  Context Ctx;
  printHeader("E8: direct vs syntactic-CPS precision census");
  std::printf("  corpus                   | equal | direct | cps    | "
              "incomp | skip\n");
  std::printf("  -------------------------+-------+--------+--------+-----"
              "---+-----\n");

  // Random programs.
  {
    Tally T;
    gen::GenOptions Opts;
    Opts.Seed = 88;
    Opts.ChainLength = 10;
    Opts.MaxDepth = 3;
    gen::ProgramGenerator Gen(Ctx, Opts);
    for (int I = 0; I < 400; ++I) {
      const syntax::Term *Prog = Gen.generate();
      Witness W = packageProgram(Ctx, "random", Prog);
      for (Symbol S : syntax::freeVars(Prog)) {
        AbsBindingSpec B;
        B.Var = S;
        B.NumTop = true;
        W.Bindings.push_back(B);
      }
      bool Skip = false;
      PrecisionOrder O = classify(Ctx, W, Skip);
      if (Skip)
        ++T.Skipped;
      else
        T.add(O);
    }
    T.print("random (seed 88, n=400)");
  }

  // Structured families: each triggers one mechanism.
  {
    Tally T;
    for (uint32_t N = 1; N <= 6; ++N) {
      bool Skip = false;
      T.add(classify(Ctx, gen::callMergeChain(Ctx, N), Skip));
    }
    T.print("call-merge chains");
  }
  {
    Tally T;
    for (uint32_t N = 1; N <= 6; ++N) {
      bool Skip = false;
      T.add(classify(Ctx, gen::conditionalChain(Ctx, N), Skip));
    }
    T.print("conditional chains");
  }
  {
    Tally T;
    bool Skip = false;
    T.add(classify(Ctx, theorem51(Ctx), Skip));
    T.print("theorem 5.1 witness");
  }
  {
    Tally T;
    bool Skip = false;
    T.add(classify(Ctx, theorem52a(Ctx), Skip));
    T.add(classify(Ctx, theorem52b(Ctx), Skip));
    T.print("theorem 5.2 witnesses");
  }

  std::printf("\npaper expectation: both strict directions are realized "
              "(columns 'direct' and 'cps' both non-zero across corpora), "
              "i.e. the analyses are incomparable in general.\n");
  return 0;
}
