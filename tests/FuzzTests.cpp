//===- tests/FuzzTests.cpp - Differential fuzzing subsystem -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzz subsystem under test: mutations preserve the ANF contract, a
/// campaign over the committed seed corpus comes back clean with a valid
/// JSON report, findings are byte-identical at every thread count, and —
/// under CPSFLOW_FAULT_INJECTION — an injected oracle violation is
/// detected, shrunk to at most half the failing program's let count, and
/// reproduced on replay.
///
//===----------------------------------------------------------------------===//

#include "anf/Anf.h"
#include "fuzz/Campaign.h"
#include "fuzz/Mutator.h"
#include "fuzz/Rewrite.h"
#include "support/FaultInjector.h"
#include "support/JsonParse.h"
#include "syntax/Analysis.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cpsflow;
using namespace cpsflow::fuzz;

namespace {

namespace fs = std::filesystem;

std::vector<std::pair<std::string, std::string>> seedCorpus() {
  std::vector<std::pair<std::string, std::string>> Out;
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(
           fs::path(CPSFLOW_SOURCE_DIR) / "examples/corpus"))
    if (E.path().extension() == ".scm")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  for (const fs::path &P : Files) {
    std::ifstream In(P);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Out.emplace_back(P.filename().string(), Buf.str());
  }
  return Out;
}

/// Small deterministic campaign options shared by the tests.
CampaignOptions testOptions() {
  CampaignOptions Opts;
  Opts.FuzzSeed = 7;
  Opts.Iterations = 10;
  Opts.Threads = 2;
  Opts.IncludeTiming = false;
  return Opts;
}

TEST(OracleMask, ParsesTagsAndNamesCaseInsensitively) {
  EXPECT_EQ(*parseOracleMask("O1"), maskOf(OracleId::InterpAgreement));
  EXPECT_EQ(*parseOracleMask("o2,precision-order"),
            maskOf(OracleId::Soundness) | maskOf(OracleId::PrecisionOrder));
  EXPECT_EQ(*parseOracleMask("all"), AllOracles);
  // Blank items are skipped; an all-blank list is still an error.
  EXPECT_EQ(*parseOracleMask("O1,,O2"),
            maskOf(OracleId::InterpAgreement) | maskOf(OracleId::Soundness));
  EXPECT_FALSE(parseOracleMask("O9").hasValue());
  EXPECT_FALSE(parseOracleMask("").hasValue());
  EXPECT_FALSE(parseOracleMask(" , ").hasValue());
}

TEST(Mutator, MutantsKeepTheAnfContract) {
  std::vector<std::pair<std::string, std::string>> Seeds = seedCorpus();
  ASSERT_FALSE(Seeds.empty());
  Mutator M(17);
  int Produced = 0;
  for (const auto &[Name, Source] : Seeds) {
    for (int I = 0; I < 8; ++I) {
      std::optional<std::string> Mutant = M.mutate(Source);
      if (!Mutant)
        continue;
      ++Produced;
      SCOPED_TRACE(Name + ": " + *Mutant);
      Context Ctx;
      Result<const syntax::Term *> R =
          syntax::parseSugaredProgram(Ctx, *Mutant);
      ASSERT_TRUE(R.hasValue())
          << (R.hasValue() ? "" : R.error().str());
      const syntax::Term *T = anf::normalizeProgram(Ctx, *R);
      Result<bool> Anf = anf::isAnf(T);
      EXPECT_TRUE(Anf.hasValue())
          << (Anf.hasValue() ? "" : Anf.error().str());
      Result<bool> Unique = syntax::checkUniqueBinders(Ctx, T);
      EXPECT_TRUE(Unique.hasValue())
          << (Unique.hasValue() ? "" : Unique.error().str());
    }
  }
  EXPECT_GT(Produced, 0);
}

TEST(Oracles, SeedProgramsAreCleanUnderEveryOracle) {
  OracleOptions Opts;
  for (const auto &[Name, Source] : seedCorpus()) {
    SCOPED_TRACE(Name);
    Result<OracleOutcome> Out = checkSource(Source, Opts);
    ASSERT_TRUE(Out.hasValue())
        << (Out.hasValue() ? "" : Out.error().str());
    EXPECT_TRUE(Out->Violations.empty())
        << Out->Violations.front().Message;
  }
}

TEST(Campaign, CleanCorpusYieldsNoFindingsAndValidJson) {
  CampaignOptions Opts = testOptions();
  CampaignResult R = runCampaign(Opts, seedCorpus());
  EXPECT_EQ(R.Iterations, Opts.Iterations);
  for (const Finding &F : R.Findings)
    ADD_FAILURE() << tag(F.Oracle) << ": " << F.Message << "\n"
                  << F.Program;

  Result<JsonValue> Doc = parseJson(campaignJson(R, Opts));
  ASSERT_TRUE(Doc.hasValue())
      << (Doc.hasValue() ? "" : Doc.error().str());
  // bench_diff's reader contract: a top-level "programs" array.
  const JsonValue *Programs = Doc->find("programs");
  ASSERT_NE(Programs, nullptr);
  EXPECT_TRUE(Programs->isArray());
  EXPECT_FALSE(Programs->items().empty());
}

TEST(Campaign, FindingsAreByteIdenticalAcrossThreadCounts) {
  std::vector<std::pair<std::string, std::string>> Seeds = seedCorpus();
  CampaignOptions A = testOptions();
  A.Iterations = 24;
  A.Threads = 1;
  CampaignOptions B = A;
  B.Threads = 4;
  CampaignResult RA = runCampaign(A, Seeds);
  CampaignResult RB = runCampaign(B, Seeds);
  EXPECT_EQ(campaignJson(RA, A), campaignJson(RB, B));
}

#ifdef CPSFLOW_FAULT_INJECTION

TEST(Campaign, InjectedViolationIsDetectedShrunkAndReplayable) {
  fault::ScopedFault F(
      {fault::Site::FuzzOracle, fault::Action::Throw, "O2"});

  CampaignOptions Opts = testOptions();
  Opts.Iterations = 2;
  CampaignResult R = runCampaign(Opts, seedCorpus());

  // Detect: every task trips the armed O2 site.
  ASSERT_EQ(R.Findings.size(), 2u);
  for (const Finding &Found : R.Findings) {
    EXPECT_EQ(Found.Oracle, OracleId::Soundness);
    EXPECT_FALSE(Found.Internal);
    EXPECT_NE(Found.Message.find("injected"), std::string::npos);

    // Shrink: the reproducer has at most half the failing program's lets.
    EXPECT_LE(Found.LetsAfter * 2, Found.LetsBefore)
        << Found.Program << "\n--- shrank to ---\n" << Found.Reproducer;

    // Replay: the reproducer still violates the recorded oracle while
    // the fault is armed, and is clean once disarmed (checked below).
    OracleOptions Replay;
    Replay.Mask = maskOf(Found.Oracle);
    Result<OracleOutcome> Out = replaySource(Found.Reproducer, Replay);
    ASSERT_TRUE(Out.hasValue());
    EXPECT_FALSE(Out->Violations.empty());
  }

  // Persist: reproducers and the findings.json index land on disk.
  fs::path Dir = fs::path(::testing::TempDir()) / "cpsflow-fuzz-findings";
  fs::remove_all(Dir);
  Result<size_t> N = writeFindings(Dir.string(), R, Opts);
  ASSERT_TRUE(N.hasValue()) << (N.hasValue() ? "" : N.error().str());
  EXPECT_EQ(*N, R.Findings.size() + 1); // + findings.json
  EXPECT_TRUE(fs::exists(Dir / "findings.json"));
  for (const Finding &Found : R.Findings)
    EXPECT_TRUE(fs::exists(Dir / reproducerName(Found)));
}

TEST(Campaign, ReproducerIsCleanOnceDisarmed) {
  std::string Repro;
  {
    fault::ScopedFault F(
        {fault::Site::FuzzOracle, fault::Action::Throw, "O3"});
    CampaignOptions Opts = testOptions();
    Opts.Iterations = 1;
    CampaignResult R = runCampaign(Opts, seedCorpus());
    ASSERT_EQ(R.Findings.size(), 1u);
    Repro = R.Findings.front().Reproducer;
  }
  // Fault disarmed: the same reproducer passes every oracle, proving the
  // violation came from the injection, not the program.
  Result<OracleOutcome> Out = replaySource(Repro, OracleOptions());
  ASSERT_TRUE(Out.hasValue());
  EXPECT_TRUE(Out->Violations.empty());
}

#endif // CPSFLOW_FAULT_INJECTION

} // namespace
