file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_cps.dir/Transform.cpp.o"
  "CMakeFiles/cpsflow_cps.dir/Transform.cpp.o.d"
  "libcpsflow_cps.a"
  "libcpsflow_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
