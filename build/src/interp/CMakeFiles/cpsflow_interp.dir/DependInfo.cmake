
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/Delta.cpp" "src/interp/CMakeFiles/cpsflow_interp.dir/Delta.cpp.o" "gcc" "src/interp/CMakeFiles/cpsflow_interp.dir/Delta.cpp.o.d"
  "/root/repo/src/interp/Direct.cpp" "src/interp/CMakeFiles/cpsflow_interp.dir/Direct.cpp.o" "gcc" "src/interp/CMakeFiles/cpsflow_interp.dir/Direct.cpp.o.d"
  "/root/repo/src/interp/Runtime.cpp" "src/interp/CMakeFiles/cpsflow_interp.dir/Runtime.cpp.o" "gcc" "src/interp/CMakeFiles/cpsflow_interp.dir/Runtime.cpp.o.d"
  "/root/repo/src/interp/SemanticCps.cpp" "src/interp/CMakeFiles/cpsflow_interp.dir/SemanticCps.cpp.o" "gcc" "src/interp/CMakeFiles/cpsflow_interp.dir/SemanticCps.cpp.o.d"
  "/root/repo/src/interp/SyntacticCps.cpp" "src/interp/CMakeFiles/cpsflow_interp.dir/SyntacticCps.cpp.o" "gcc" "src/interp/CMakeFiles/cpsflow_interp.dir/SyntacticCps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/cpsflow_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/anf/CMakeFiles/cpsflow_anf.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/cpsflow_cps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
