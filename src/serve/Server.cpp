//===- serve/Server.cpp - Fault-tolerant analysis daemon ------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "gen/Digest.h"
#include "support/FaultInjector.h"
#include "support/Json.h"

#include <cerrno>
#include <cstring>
#include <exception>
#include <filesystem>
#include <new>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cpsflow;
using namespace cpsflow::serve;

/// One client connection. The fd is shared by the reader (recv) and any
/// worker holding a queued job for it (send); the last owner's
/// destructor closes it, so responses already queued when the client
/// stops sending still go out before the close.
struct Server::Connection {
  explicit Connection(int Fd) : Fd(Fd) {}
  ~Connection() {
    if (Fd >= 0)
      ::close(Fd);
  }
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  int Fd;
  std::mutex WriteMu; ///< responses from concurrent workers interleave
                      ///< by whole lines, never by bytes
  std::atomic<bool> WriteDead{false};
};

Server::Server(ServeOptions Opts)
    : Opts(std::move(Opts)),
      Interrupt(std::make_shared<support::CancelToken>()) {
  if (this->Opts.Workers == 0)
    this->Opts.Workers = 1;
  this->Opts.Defaults.Interrupt = Interrupt;
  this->Opts.Defaults.Memo = this->Opts.Incremental ? &Memo : nullptr;
}

Server::~Server() {
  if (Started && !Drained) {
    requestDrain();
    waitDrained();
  }
}

Result<bool> Server::start() {
  if (!Opts.CacheDir.empty()) {
    Cache = std::make_unique<ResultCache>(Opts.CacheDir);
    if (!Cache->ok())
      return Error("cannot create cache directory '" + Opts.CacheDir + "'");
  }

  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.empty() ||
      Opts.SocketPath.size() >= sizeof(Addr.sun_path))
    return Error("socket path '" + Opts.SocketPath +
                 "' is empty or too long for AF_UNIX");
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Error(std::string("socket: ") + std::strerror(errno));
  // A stale socket file from a previous (possibly crashed) daemon blocks
  // bind; removing it is safe because the path is ours by contract.
  ::unlink(Opts.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) < 0) {
    Error E(std::string("bind '") + Opts.SocketPath +
            "': " + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }
  if (::listen(ListenFd, 128) < 0) {
    Error E(std::string("listen: ") + std::strerror(errno));
    ::close(ListenFd);
    ListenFd = -1;
    return E;
  }

  Started = true;
  for (unsigned I = 0; I < Opts.Workers; ++I)
    WorkerThreads.emplace_back([this] { workerLoop(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestDrain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return;

  // Wake accept() and stop admission at the socket layer. The fd itself
  // stays open until waitDrained so its number cannot be reused mid-run.
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);

  // Stop reading every live connection; pending responses still flow.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::weak_ptr<Connection> &W : Conns)
      if (std::shared_ptr<Connection> C = W.lock())
        ::shutdown(C->Fd, SHUT_RD);
  }

  // After the grace period, anything still analyzing degrades through
  // the governor's interrupt probe (the Section 4.4 cut path) rather
  // than holding up shutdown indefinitely.
  std::lock_guard<std::mutex> Lock(GraceMu);
  GraceThread = std::thread([this] {
    std::unique_lock<std::mutex> L(GraceMu);
    bool Finished = GraceCv.wait_for(
        L,
        std::chrono::duration<double, std::milli>(
            Opts.DrainGraceMs > 0 ? Opts.DrainGraceMs : 0.0),
        [this] { return GraceDone; });
    if (!Finished)
      Interrupt->cancel();
  });
}

void Server::waitDrained() {
  if (!Started || Drained)
    return;
  requestDrain();

  if (AcceptThread.joinable())
    AcceptThread.join();

  // No new readers can appear once the accept thread is gone.
  std::vector<std::thread> R;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    R.swap(Readers);
  }
  for (std::thread &T : R)
    T.join();

  // Readers are gone, so the queue only shrinks from here: tell the
  // workers to exit once they have answered everything still queued.
  {
    std::lock_guard<std::mutex> Lock(QMu);
    QStopping = true;
  }
  QCv.notify_all();
  for (std::thread &T : WorkerThreads)
    T.join();

  {
    std::lock_guard<std::mutex> Lock(GraceMu);
    GraceDone = true;
  }
  GraceCv.notify_all();
  if (GraceThread.joinable())
    GraceThread.join();

  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Opts.SocketPath.c_str());
  Drained = true;
}

size_t Server::inFlight() const {
  std::lock_guard<std::mutex> Lock(QMu);
  return Queue.size() + Executing;
}

void Server::acceptLoop() {
  for (;;) {
    // Poll with a timeout so drain is observed even if the shutdown()
    // wakeup is missed (portability belt-and-braces).
    pollfd P{ListenFd, POLLIN, 0};
    int N = ::poll(&P, 1, 100);
    if (Draining.load())
      return;
    if (N <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      return; // listen socket is gone
    }
    auto C = std::make_shared<Connection>(Fd);
    std::lock_guard<std::mutex> Lock(ConnMu);
    if (Draining.load()) {
      // Lost the race with requestDrain's connection sweep; this
      // connection was never registered, so close it unserved.
      continue;
    }
    Conns.push_back(C);
    Readers.emplace_back([this, C] { readerLoop(C); });
  }
}

void Server::readerLoop(std::shared_ptr<Connection> C) {
  std::string Buf;
  char Chunk[4096];
  for (;;) {
    pollfd P{C->Fd, POLLIN, 0};
    int N = ::poll(&P, 1, 100);
    if (Draining.load())
      return;
    if (N <= 0)
      continue;
    ssize_t Got = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
    if (Got == 0)
      return; // client closed (or SHUT_RD)
    if (Got < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    Buf.append(Chunk, static_cast<size_t>(Got));

    size_t Start = 0;
    for (size_t Nl; (Nl = Buf.find('\n', Start)) != std::string::npos;
         Start = Nl + 1) {
      std::string Line = Buf.substr(Start, Nl - Start);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (!Line.empty())
        handleLine(C, Line);
    }
    Buf.erase(0, Start);

    if (Buf.size() > MaxRequestBytes) {
      // Framing is lost — there is no way to know where this client's
      // next request begins. Report once, then stop reading.
      countError(ServeErrorKind::Protocol);
      writeLine(*C, errorResponse(nullptr, ServeErrorKind::Protocol,
                                  "request line exceeds " +
                                      std::to_string(MaxRequestBytes) +
                                      " bytes"));
      return;
    }
  }
}

void Server::handleLine(const std::shared_ptr<Connection> &C,
                        const std::string &Line) {
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Metrics.add("serve.requests", 1);
  }

  Result<ServeRequest> Req = parseServeRequest(Line);
  if (!Req) {
    countError(ServeErrorKind::Protocol);
    writeLine(*C, errorResponse(nullptr, ServeErrorKind::Protocol,
                                Req.error().str()));
    return;
  }

  switch (Req->Kind) {
  case ServeRequest::Op::Health:
    writeLine(*C, healthJson(*Req));
    return;
  case ServeRequest::Op::Stats:
    writeLine(*C, statsJson(*Req));
    return;
  case ServeRequest::Op::Shutdown: {
    JsonWriter W;
    W.beginObject();
    W.key("ok").value(true);
    if (Req->HasId)
      W.key("id").value(Req->Id);
    W.key("draining").value(true);
    W.endObject();
    writeLine(*C, W.str());
    requestDrain();
    return;
  }
  case ServeRequest::Op::Analyze:
    break;
  }

  // Admission control: a full queue sheds immediately instead of letting
  // latency (and client timeouts) grow without bound.
  bool Admitted = false;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    if (!QStopping && !Draining.load() && Queue.size() < Opts.QueueCap) {
      Queue.push_back(
          Job{C, std::move(*Req), std::chrono::steady_clock::now()});
      Admitted = true;
    }
  }
  if (Admitted) {
    QCv.notify_one();
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Metrics.add("serve.shed", 1);
  }
  writeLine(*C, errorResponse(&*Req, ServeErrorKind::Shed,
                              Draining.load()
                                  ? "server is draining"
                                  : "server is overloaded, try again"));
}

void Server::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QMu);
      QCv.wait(Lock, [this] { return QStopping || !Queue.empty(); });
      if (Queue.empty())
        return; // QStopping and nothing left to answer
      J = std::move(Queue.front());
      Queue.pop_front();
      ++Executing;
    }
    processJob(std::move(J));
    {
      std::lock_guard<std::mutex> Lock(QMu);
      --Executing;
    }
  }
}

void Server::processJob(Job J) {
  const uint64_t Ordinal = NextOrdinal.fetch_add(1) + 1;
  std::string Resp;
  // Last line of containment: handleAnalyze contains analysis failures
  // itself, so this catches only handler-level faults (injected or
  // real) — the worker answers and survives regardless.
  try {
    CPSFLOW_FAULT_COUNTED(fault::Site::ServeHandler, Ordinal);
    Resp = handleAnalyze(J.Req, Ordinal);
  } catch (const std::bad_alloc &) {
    countError(ServeErrorKind::Memory);
    Resp = errorResponse(&J.Req, ServeErrorKind::Memory,
                         "contained failure: out of memory");
  } catch (const std::exception &Ex) {
    countError(ServeErrorKind::Internal);
    Resp = errorResponse(&J.Req, ServeErrorKind::Internal,
                         std::string("contained failure: ") + Ex.what());
  } catch (...) {
    countError(ServeErrorKind::Internal);
    Resp = errorResponse(&J.Req, ServeErrorKind::Internal,
                         "contained failure: unknown exception");
  }
  writeLine(*J.Conn, Resp);

  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - J.Enqueued)
                .count();
  std::lock_guard<std::mutex> Lock(MetricsMu);
  Metrics.histogram("serve.latencyUs")
      .record(static_cast<uint64_t>(Us < 0 ? 0 : Us));
}

std::string Server::handleAnalyze(const ServeRequest &Req,
                                  uint64_t Ordinal) {
  AnalyzeConfig Eff = Opts.Defaults;
  if (Req.MaxGoals)
    Eff.MaxGoals = Req.MaxGoals;
  if (Req.DeadlineMs >= 0)
    Eff.DeadlineMs = Req.DeadlineMs;

  CacheKey Key;
  Key.SourceDigest = gen::textDigest(Req.Program);
  Key.SourceDigest2 = gen::textDigest2(Req.Program);
  Key.SourceLen = Req.Program.size();
  Key.Analyzer = Req.Analyzer;
  Key.Domain = Req.Domain;
  Key.MaxGoals = Eff.MaxGoals;
  Key.LoopUnroll = Req.LoopUnroll;
  Key.DupBudget = Req.DupBudget;
  Key.UseSummaries = Req.UseSummaries;

  const bool UseCache = Cache && !Req.NoCache;
  if (UseCache) {
    if (std::optional<std::string> Hit = Cache->lookup(Key)) {
      std::lock_guard<std::mutex> Lock(MetricsMu);
      Metrics.add("serve.ok", 1);
      Metrics.add("serve.cached", 1);
      return analyzeResponse(Req, *Hit, /*Cached=*/true);
    }
  }

  AnalyzeOutcome Out = runServeAnalyze(Req, Eff, Ordinal);
  if (!Out.Ok) {
    countError(Out.Kind);
    return errorResponse(&Req, Out.Kind, Out.Message);
  }

  // Only complete (non-degraded) results are cached: a degraded answer
  // depends on wall-clock and ceilings that are not part of the key.
  // Warm (replay-assisted) payloads stay out too: their answer is
  // byte-identical to cold, but their stats block reflects the warm walk,
  // and the cache is byte-canonical per key.
  if (UseCache && !Out.Degraded && !Out.Incremental)
    Cache->store(Key, Out.PayloadJson);
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    Metrics.add("serve.ok", 1);
    if (Out.Degraded)
      Metrics.add("serve.degraded", 1);
    if (Out.Incremental)
      Metrics.add("serve.memo.warmRuns", 1);
    if (Out.ReplayHits)
      Metrics.add("serve.memo.replayHits", Out.ReplayHits);
    if (Out.ReplayMisses)
      Metrics.add("serve.memo.replayMisses", Out.ReplayMisses);
  }
  return analyzeResponse(Req, Out.PayloadJson, /*Cached=*/false);
}

std::string Server::healthJson(const ServeRequest &Req) {
  size_t Queued, Running;
  {
    std::lock_guard<std::mutex> Lock(QMu);
    Queued = Queue.size();
    Running = Executing;
  }
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  if (Req.HasId)
    W.key("id").value(Req.Id);
  W.key("status").value(Draining.load() ? "draining" : "ok");
  W.key("workers").value(static_cast<uint64_t>(Opts.Workers));
  W.key("queued").value(static_cast<uint64_t>(Queued));
  W.key("executing").value(static_cast<uint64_t>(Running));
  W.key("queueCap").value(static_cast<uint64_t>(Opts.QueueCap));
  W.key("cache").value(Cache != nullptr);
  W.endObject();
  return W.str();
}

std::string Server::statsJson(const ServeRequest &Req) {
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(true);
  if (Req.HasId)
    W.key("id").value(Req.Id);
  W.key("stats");
  {
    std::lock_guard<std::mutex> Lock(MetricsMu);
    if (Cache) {
      // Mirror the cache's own counters into the registry at read time
      // so one document carries the whole picture.
      ResultCache::CacheStats CS = Cache->stats();
      Metrics.set("serve.cache.hits", CS.Hits);
      Metrics.set("serve.cache.misses", CS.Misses);
      Metrics.set("serve.cache.stores", CS.Stores);
      Metrics.set("serve.cache.storeFailures", CS.StoreFailures);
      Metrics.set("serve.cache.corrupt", CS.Corrupt);
      Metrics.set("serve.cache.collisions", CS.Collisions);
      Metrics.set("serve.cache.sweptTmp", CS.SweptTmp);
    }
    if (Opts.Incremental) {
      MemoStore::StoreStats MS = Memo.stats();
      Metrics.set("serve.memo.tables", MS.Tables);
      Metrics.set("serve.memo.entries", MS.Entries);
    }
    Metrics.writeJson(W);
  }
  W.endObject();
  return W.str();
}

void Server::writeLine(Connection &C, const std::string &Line) {
  if (C.WriteDead.load())
    return;
  std::lock_guard<std::mutex> Lock(C.WriteMu);
  std::string Framed = Line;
  Framed.push_back('\n');
  size_t Off = 0;
  while (Off < Framed.size()) {
    ssize_t N = ::send(C.Fd, Framed.data() + Off, Framed.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // The client went away; there is nobody to tell. Drop the rest of
      // this connection's output but keep the daemon healthy.
      C.WriteDead.store(true);
      return;
    }
    Off += static_cast<size_t>(N);
  }
}

void Server::countError(ServeErrorKind Kind) {
  std::lock_guard<std::mutex> Lock(MetricsMu);
  Metrics.add(std::string("serve.error.") + str(Kind), 1);
}
