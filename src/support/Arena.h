//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for AST nodes.
///
/// Terms of A, terms of cps(A), and abstract continuation frames are
/// immutable once built, referenced by plain pointers, and live exactly as
/// long as the enclosing Program object. An arena makes node identity (the
/// pointer) stable and cheap, which the analyzers rely on for memoization
/// keys, and releases everything at once on destruction.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_ARENA_H
#define CPSFLOW_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace cpsflow {

/// Bump allocator with trivial-destructor enforcement.
///
/// Objects allocated here must be trivially destructible or must not rely on
/// their destructor running; AST nodes in this project store only PODs,
/// Symbols, and pointers to other arena nodes, plus out-of-line vectors kept
/// alive by the owning Program.
class Arena {
  static constexpr size_t SlabSize = 1 << 16;

public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;

  /// Allocates and constructs a \p T from \p Args.
  template <typename T, typename... Args> T *create(Args &&...ArgList) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects must not need destruction");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(ArgList)...);
  }

  /// Raw aligned allocation of \p Bytes.
  void *allocate(size_t Bytes, size_t Align) {
    assert(Align > 0 && (Align & (Align - 1)) == 0 && "non power-of-two");
    size_t Aligned = (Offset + Align - 1) & ~(Align - 1);
    if (Slabs.empty() || Aligned + Bytes > SlabSize) {
      if (Bytes + Align > SlabSize)
        return allocateLarge(Bytes, Align);
      Slabs.push_back(std::make_unique<char[]>(SlabSize));
      Offset = 0;
      Aligned = 0;
    }
    char *Ptr = Slabs.back().get() + Aligned;
    Offset = Aligned + Bytes;
    ++NumAllocations;
    return Ptr;
  }

  /// Number of objects handed out, for tests and statistics.
  size_t numAllocations() const { return NumAllocations; }

private:
  void *allocateLarge(size_t Bytes, size_t Align) {
    LargeAllocations.push_back(std::make_unique<char[]>(Bytes + Align));
    char *Base = LargeAllocations.back().get();
    uintptr_t Raw = reinterpret_cast<uintptr_t>(Base);
    uintptr_t Aligned = (Raw + Align - 1) & ~(uintptr_t)(Align - 1);
    ++NumAllocations;
    return reinterpret_cast<void *>(Aligned);
  }

  std::vector<std::unique_ptr<char[]>> Slabs;
  std::vector<std::unique_ptr<char[]>> LargeAllocations;
  size_t Offset = SlabSize;
  size_t NumAllocations = 0;
};

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_ARENA_H
