//===- interp/SyntacticCps.h - Figure 3: the CPS-term machine ---*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic-CPS interpreter Mc of Figure 3: a direct-style machine
/// specialized to cps(A) programs. Its run-time values include reified
/// continuations `(co x, P, rho)` and `stop`, stored in the heap like any
/// other value — the salient aspect of the CPS transformation (Section 3.3):
/// the evaluator's control state becomes an object the program manipulates.
///
/// The machine is tail-recursive everywhere (CPS!), so it runs as a flat
/// loop with no control stack of its own.
///
/// Lemma 3.3: running F_k[M] with k bound to `stop` agrees with the direct
/// interpreter on M, modulo the delta mapping of values (interp/Delta.h)
/// and the extra continuation entries in the store.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_INTERP_SYNTACTICCPS_H
#define CPSFLOW_INTERP_SYNTACTICCPS_H

#include "cps/Transform.h"
#include "interp/Runtime.h"

#include <string>
#include <vector>

namespace cpsflow {
namespace interp {

/// One initial binding for a CPS run.
struct CpsInitialBinding {
  Symbol Var;
  CpsRtValue Value;
};

/// Runs the Figure 3 machine. Single-use.
class SyntacticCpsInterp {
public:
  explicit SyntacticCpsInterp(RunLimits Limits = RunLimits())
      : Limits(Limits) {}

  /// Evaluates \p Program.Root with \p Program.TopK bound to `stop`, plus
  /// the bindings in \p Initial (typically the delta-images of the direct
  /// run's initial bindings).
  CpsRunResult run(const cps::CpsProgram &Program,
                   const std::vector<CpsInitialBinding> &Initial = {});

  /// Enables execution tracing (one line per machine transition, capped).
  void enableTrace(const Context &Ctx, size_t MaxLines = 2000) {
    TraceCtx = &Ctx;
    MaxTrace = MaxLines;
  }

  /// The recorded trace.
  const std::vector<std::string> &trace() const { return Trace; }

  /// The final store (valid after run). Contains continuation cells for
  /// the KVars in addition to the delta-images of the direct store's
  /// cells (Lemma 3.3).
  const CpsStore &store() const { return TheStore; }

private:
  RunLimits Limits;
  CpsStore TheStore;
  EnvArena Envs;
  const Context *TraceCtx = nullptr;
  size_t MaxTrace = 0;
  std::vector<std::string> Trace;
};

} // namespace interp
} // namespace cpsflow

#endif // CPSFLOW_INTERP_SYNTACTICCPS_H
