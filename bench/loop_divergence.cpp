//===- bench/loop_divergence.cpp - E7: loop undecidability ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// E7 — Section 6.2's computability claim: with the explicit `loop`
/// construct, the direct analysis computes its (exact) answer instantly —
/// the join of all naturals is just T — while the semantic-CPS analysis
/// must apply the continuation to *every* natural and join; computing
/// that is undecidable (adapting Kam & Ullman's MOP argument).
///
/// The bench makes this concrete with the loopProbe(k) program, whose
/// continuation tests `if0 (sub1^k x)`: any finite unrolling bound below
/// k reports r = 9 and *looks* converged, yet the true join is T. No
/// bound is ever sufficient, because k can be arbitrary.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "gen/Workloads.h"

using namespace cpsflow;
using namespace cpsflow::bench;
using namespace cpsflow::analysis;

int main() {
  Context Ctx;
  printHeader("E7: loop — direct analysis exact, CPS analyses uncomputable");

  const uint32_t ProbeK = 48;
  Witness W = gen::loopProbe(Ctx, ProbeK);
  std::printf("program: (let (x (loop)) ... (if0 (sub1^%u x) 7 9)); exact "
              "answer for r: T (= join of 7 at iterate %u and 9 "
              "elsewhere)\n\n",
              ProbeK, ProbeK);

  auto AD = DirectAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W)).run();
  std::printf("direct analysis (exact loop rule): r = %s, %llu goals, "
              "complete = %s\n\n",
              AD.valueOf(W.Probe).str(Ctx).c_str(),
              (unsigned long long)AD.Stats.Goals,
              AD.Stats.complete() ? "yes" : "no");

  std::printf("semantic-CPS analysis with bounded unrolling (sound summary "
              "off):\n");
  std::printf("  unroll bound | r            | goals  | looks converged?\n");
  std::printf("  -------------+--------------+--------+-----------------\n");
  for (uint32_t Bound : {4u, 8u, 16u, 32u, 40u, 47u, 48u, 49u, 64u}) {
    AnalyzerOptions Opts;
    Opts.LoopUnroll = Bound;
    Opts.LoopSoundSummary = false;
    auto AS =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Opts)
            .run();
    // "Looks converged": the last doubling of the bound did not change r.
    AnalyzerOptions Half = Opts;
    Half.LoopUnroll = Bound / 2;
    auto ASHalf =
        SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Half)
            .run();
    bool Converged = AS.valueOf(W.Probe) == ASHalf.valueOf(W.Probe);
    std::printf("  %12u | %-12s | %6llu | %s\n", Bound,
                AS.valueOf(W.Probe).str(Ctx).c_str(),
                (unsigned long long)AS.Stats.Goals,
                Converged ? "yes" : "no");
  }

  std::printf("\nnote the bound-%u row: r flips from 9 to T only once the "
              "unrolling crosses the probe depth — after looking "
              "converged for every smaller bound. With the sound summary "
              "on (the default), every bound reports the safe r = T:\n",
              ProbeK + 1);

  AnalyzerOptions Sound;
  Sound.LoopUnroll = 4;
  Sound.LoopSoundSummary = true;
  auto ASound =
      SemanticCpsAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Sound)
          .run();
  std::printf("  unroll 4 + summary: r = %s\n",
              ASound.valueOf(W.Probe).str(Ctx).c_str());

  std::printf("\nsyntactic-CPS loopk behaves the same way:\n");
  for (uint32_t Bound : {8u, 48u, 49u}) {
    AnalyzerOptions Opts;
    Opts.LoopUnroll = Bound;
    Opts.LoopSoundSummary = false;
    auto AC =
        SyntacticCpsAnalyzer<CD>(Ctx, W.Cps, cpsBindings<CD>(W), Opts).run();
    std::printf("  unroll %2u: r = %s\n", Bound,
                AC.valueOf(W.Probe).str(Ctx).c_str());
  }
  return 0;
}
