//===- interp/Delta.cpp - The delta relation of Lemma 3.3 -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Delta.h"

#include <set>
#include <sstream>

using namespace cpsflow;
using namespace cpsflow::interp;

bool cpsflow::interp::deltaRelated(const RtValue &Direct,
                                   const CpsRtValue &Cps,
                                   const cps::CpsProgram &Program) {
  switch (Direct.Tag) {
  case RtValue::Kind::Num:
    return Cps.Tag == CpsRtValue::Kind::Num && Cps.Num == Direct.Num;
  case RtValue::Kind::Inc:
    return Cps.Tag == CpsRtValue::Kind::Inck;
  case RtValue::Kind::Dec:
    return Cps.Tag == CpsRtValue::Kind::Deck;
  case RtValue::Kind::Closure: {
    if (Cps.Tag != CpsRtValue::Kind::Closure)
      return false;
    auto It = Program.LamToCps.find(Direct.Lam);
    return It != Program.LamToCps.end() && It->second == Cps.Lam;
  }
  }
  return false;
}

bool cpsflow::interp::storesDeltaRelated(const Context &Ctx,
                                         const Store &DirectStore,
                                         const CpsStore &CpsStore,
                                         const cps::CpsProgram &Program,
                                         std::string *WhyNot) {
  auto Fail = [&](const std::string &Message) {
    if (WhyNot)
      *WhyNot = Message;
    return false;
  };

  // The KVars introduced by the transformation: their cells are the
  // continuation entries Lemma 3.3 sets aside. Continuation-lambda
  // parameters are source variables (the original let-bound names), so
  // they participate in the comparison.
  std::set<Symbol> KVars(Program.KVars.begin(), Program.KVars.end());

  // Collect the per-variable histories of both stores.
  std::set<Symbol> Vars;
  for (const auto &Cell : DirectStore.cells())
    Vars.insert(Cell.Var);
  for (const auto &Cell : CpsStore.cells())
    if (!KVars.count(Cell.Var))
      Vars.insert(Cell.Var);

  for (Symbol X : Vars) {
    std::vector<RtValue> D = DirectStore.valuesAt(X);
    std::vector<CpsRtValue> C = CpsStore.valuesAt(X);
    if (D.size() != C.size()) {
      std::ostringstream O;
      O << "variable '" << Ctx.spelling(X) << "': " << D.size()
        << " direct cells vs " << C.size() << " cps cells";
      return Fail(O.str());
    }
    for (size_t I = 0; I < D.size(); ++I)
      if (!deltaRelated(D[I], C[I], Program)) {
        std::ostringstream O;
        O << "variable '" << Ctx.spelling(X) << "' cell " << I
          << ": delta(" << str(Ctx, D[I]) << ") != " << str(Ctx, C[I]);
        return Fail(O.str());
      }
  }
  return true;
}
