//===- fuzz/Oracles.cpp - Differential fuzzing oracles ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "interp/Delta.h"
#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"
#include "reference/RefDirectAnalyzer.h"
#include "reference/RefDupAnalyzer.h"
#include "reference/RefSemanticCpsAnalyzer.h"
#include "reference/RefSyntacticCpsAnalyzer.h"
#include "support/FaultInjector.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"
#include "syntax/Sugar.h"

#include <algorithm>
#include <sstream>

namespace cpsflow {
namespace fuzz {

using namespace analysis;
using namespace interp;

const char *tag(OracleId Id) {
  switch (Id) {
  case OracleId::InterpAgreement:
    return "O1";
  case OracleId::Soundness:
    return "O2";
  case OracleId::PrecisionOrder:
    return "O3";
  case OracleId::ReferenceMatch:
    return "O4";
  case OracleId::Determinism:
    return "O5";
  case OracleId::GovernedDegrade:
    return "O6";
  case OracleId::PushdownOrder:
    return "O7";
  }
  return "?";
}

const char *describe(OracleId Id) {
  switch (Id) {
  case OracleId::InterpAgreement:
    return "interp-agreement";
  case OracleId::Soundness:
    return "soundness";
  case OracleId::PrecisionOrder:
    return "precision-order";
  case OracleId::ReferenceMatch:
    return "reference-match";
  case OracleId::Determinism:
    return "determinism";
  case OracleId::GovernedDegrade:
    return "governed-degradation";
  case OracleId::PushdownOrder:
    return "pushdown-order";
  }
  return "?";
}

Result<uint32_t> parseOracleMask(const std::string &List) {
  uint32_t Mask = 0;
  std::string Item;
  std::istringstream In(List);
  while (std::getline(In, Item, ',')) {
    std::string Lower;
    for (char C : Item)
      if (!std::isspace(static_cast<unsigned char>(C)))
        Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    if (Lower.empty())
      continue;
    if (Lower == "all") {
      Mask = AllOracles;
      continue;
    }
    bool Found = false;
    for (unsigned I = 0; I < NumOracles; ++I) {
      OracleId Id = static_cast<OracleId>(I);
      std::string T = tag(Id);
      std::transform(T.begin(), T.end(), T.begin(), ::tolower);
      if (Lower == T || Lower == describe(Id)) {
        Mask |= maskOf(Id);
        Found = true;
        break;
      }
    }
    if (!Found)
      return Error("unknown oracle '" + Item +
                   "' (want O1..O7 or a name like interp-agreement)");
  }
  if (Mask == 0)
    return Error("empty oracle list");
  return Mask;
}

namespace {

/// Collects one oracle's verdicts: the fault-injection hook, the skip
/// rule, and violation accumulation.
class OracleScope {
public:
  OracleScope(OracleId Id, OracleOutcome &Out) : Id(Id), Out(Out) {}

  /// Fires the named fault site. \returns true when an armed fault
  /// converted into a violation (the caller should skip the real checks:
  /// the injected failure already is the finding).
  bool injectionTripped() {
    try {
      CPSFLOW_FAULT_NAMED(fault::Site::FuzzOracle, tag(Id));
    } catch (const std::exception &E) {
      Out.Violations.push_back({Id, std::string("injected: ") + E.what()});
      return true;
    }
    return false;
  }

  void markChecked() { Out.Checked |= maskOf(Id); }

  void violation(const std::string &Message) {
    Out.Violations.push_back({Id, Message});
  }

private:
  OracleId Id;
  OracleOutcome &Out;
};

/// Integer bindings for the free variables of \p T, cycling \p Ints in
/// symbol order (the tests/TestUtil.h convention).
std::vector<InitialBinding> intBindings(const syntax::Term *T,
                                        const std::vector<int64_t> &Ints) {
  std::vector<InitialBinding> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(InitialBinding{S, RtValue::number(V)});
  }
  return Out;
}

std::vector<CpsInitialBinding> intCpsBindings(const syntax::Term *T,
                                              const std::vector<int64_t> &Ints) {
  std::vector<CpsInitialBinding> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(CpsInitialBinding{S, CpsRtValue::number(V)});
  }
  return Out;
}

template <typename D> domain::AbsVal<D> alpha(const RtValue &V) {
  using Val = domain::AbsVal<D>;
  switch (V.Tag) {
  case RtValue::Kind::Num:
    return Val::number(D::constant(V.Num));
  case RtValue::Kind::Inc:
    return Val::closures(domain::CloSet::single(domain::CloRef::inc()));
  case RtValue::Kind::Dec:
    return Val::closures(domain::CloSet::single(domain::CloRef::dec()));
  case RtValue::Kind::Closure:
    return Val::closures(domain::CloSet::single(domain::CloRef::lam(V.Lam)));
  }
  return Val::bot();
}

template <typename D> domain::CpsAbsVal<D> alphaCps(const CpsRtValue &V) {
  using Val = domain::CpsAbsVal<D>;
  switch (V.Tag) {
  case CpsRtValue::Kind::Num:
    return Val::number(D::constant(V.Num));
  case CpsRtValue::Kind::Inck:
    return Val::closures(
        domain::CpsCloSet::single(domain::CpsCloRef::inck()));
  case CpsRtValue::Kind::Deck:
    return Val::closures(
        domain::CpsCloSet::single(domain::CpsCloRef::deck()));
  case CpsRtValue::Kind::Closure:
    return Val::closures(
        domain::CpsCloSet::single(domain::CpsCloRef::lam(V.Lam)));
  case CpsRtValue::Kind::Cont:
    return Val::konts(domain::KontSet::single(domain::KontRef::cont(V.Cont)));
  case CpsRtValue::Kind::Stop:
    return Val::konts(domain::KontSet::single(domain::KontRef::stop()));
  }
  return Val::bot();
}

template <typename D>
std::vector<DirectBinding<D>> absBindings(const syntax::Term *T,
                                          const std::vector<int64_t> &Ints) {
  std::vector<DirectBinding<D>> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(
        DirectBinding<D>{S, domain::AbsVal<D>::number(D::constant(V))});
  }
  return Out;
}

template <typename D>
std::vector<CpsBinding<D>> absCpsBindings(const syntax::Term *T,
                                          const std::vector<int64_t> &Ints) {
  std::vector<CpsBinding<D>> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(
        CpsBinding<D>{S, domain::CpsAbsVal<D>::number(D::constant(V))});
  }
  return Out;
}

bool statsEq(const AnalyzerStats &A, const AnalyzerStats &B,
             std::string *Why) {
  auto Field = [&](const char *Name, uint64_t X, uint64_t Y) {
    if (X == Y)
      return true;
    *Why = std::string(Name) + " " + std::to_string(X) + " vs " +
           std::to_string(Y);
    return false;
  };
  // The fields InternEquivalenceTests compares; Degraded and the
  // observability counters are deliberately excluded (the reference
  // oracles predate them).
  return Field("goals", A.Goals, B.Goals) &&
         Field("cacheHits", A.CacheHits, B.CacheHits) &&
         Field("cuts", A.Cuts, B.Cuts) &&
         Field("maxDepth", A.MaxDepth, B.MaxDepth) &&
         Field("deadPaths", A.DeadPaths, B.DeadPaths) &&
         Field("prunedBranches", A.PrunedBranches, B.PrunedBranches) &&
         Field("budgetExhausted", A.BudgetExhausted, B.BudgetExhausted) &&
         Field("loopBounded", A.LoopBounded, B.LoopBounded);
}

/// All the per-program state the oracles share: one concrete run per
/// machine, one ungoverned abstract run per analyzer.
template <typename D> struct Runs {
  const syntax::Term *T = nullptr;
  const cps::CpsProgram *P = nullptr;

  DirectInterp CI;
  RunResult CR;
  SemanticCpsInterp SI;
  RunResult SR;
  SyntacticCpsInterp CCI;
  CpsRunResult CCR;

  DirectResult<D> AD;
  SemanticResult<D> AS;
  SyntacticResult<D> AC;
  DirectResult<D> ADup;
  PushdownResult<D> APd;

  Runs(const Context &, RunLimits Limits)
      : CI(Limits), SI(Limits), CCI(Limits) {}
};

template <typename D>
void checkO1(OracleScope S, const Context &Ctx, Runs<D> &R) {
  if (S.injectionTripped())
    return;
  // Fuel exhaustion is a budget artifact, not a semantic difference: the
  // three machines count steps differently (tests/AgreementTests.cpp).
  if (R.CR.Status == RunStatus::OutOfFuel ||
      R.SR.Status == RunStatus::OutOfFuel ||
      R.CCR.Status == RunStatus::OutOfFuel)
    return;
  S.markChecked();

  // Lemma 3.1: the direct and semantic-CPS machines agree on status,
  // answer, and per-variable store history.
  if (R.CR.Status != R.SR.Status) {
    S.violation("3.1: direct/semantic status mismatch");
    return;
  }
  if (R.CR.ok()) {
    if (R.CR.Value.Tag != R.SR.Value.Tag ||
        (R.CR.Value.isNum() && R.CR.Value.Num != R.SR.Value.Num) ||
        (R.CR.Value.isClosure() && R.CR.Value.Lam != R.SR.Value.Lam))
      S.violation("3.1: direct answer " + str(Ctx, R.CR.Value) +
                  " != semantic answer " + str(Ctx, R.SR.Value));
    for (Symbol X : syntax::boundVars(R.T)) {
      std::vector<RtValue> HD = R.CI.store().valuesAt(X);
      std::vector<RtValue> HS = R.SI.store().valuesAt(X);
      bool Same = HD.size() == HS.size();
      for (size_t I = 0; Same && I < HD.size(); ++I)
        Same = HD[I].Tag == HS[I].Tag &&
               (!HD[I].isNum() || HD[I].Num == HS[I].Num);
      if (!Same) {
        S.violation("3.1: store history of " +
                    std::string(Ctx.spelling(X)) + " differs");
        break;
      }
    }
  }

  // Lemma 3.3: the syntactic-CPS machine agrees through delta.
  if (R.CR.Status != R.CCR.Status) {
    S.violation("3.3: direct/syntactic status mismatch");
    return;
  }
  if (R.CR.ok()) {
    if (!deltaRelated(R.CR.Value, R.CCR.Value, *R.P))
      S.violation("3.3: answers not delta-related: direct " +
                  str(Ctx, R.CR.Value) + ", cps " + str(Ctx, R.CCR.Value));
    std::string Why;
    if (!storesDeltaRelated(Ctx, R.CI.store(), R.CCI.store(), *R.P, &Why))
      S.violation("3.3: stores not delta-related: " + Why);
  }
}

template <typename D>
void checkO2(OracleScope S, const Context &Ctx, Runs<D> &R) {
  if (S.injectionTripped())
    return;
  if (R.AD.Stats.BudgetExhausted || R.AS.Stats.BudgetExhausted ||
      R.AC.Stats.BudgetExhausted || R.ADup.Stats.BudgetExhausted ||
      R.APd.Stats.BudgetExhausted)
    return;
  S.markChecked();

  if (R.CR.ok()) {
    domain::AbsVal<D> A = alpha<D>(R.CR.Value);
    if (!domain::AbsVal<D>::leq(A, R.AD.Answer.Value))
      S.violation("direct value " + str(Ctx, R.CR.Value) + " not below " +
                  R.AD.Answer.Value.str(Ctx));
    if (!domain::AbsVal<D>::leq(A, R.AS.Answer.Value))
      S.violation("semantic value " + str(Ctx, R.CR.Value) +
                  " not below " + R.AS.Answer.Value.str(Ctx));
    if (!domain::AbsVal<D>::leq(A, R.ADup.Answer.Value))
      S.violation("dup value " + str(Ctx, R.CR.Value) + " not below " +
                  R.ADup.Answer.Value.str(Ctx));
    if (!domain::AbsVal<D>::leq(A, R.APd.Answer.Value))
      S.violation("pushdown value " + str(Ctx, R.CR.Value) +
                  " not below " + R.APd.Answer.Value.str(Ctx));
    for (const auto &Cell : R.CI.store().cells()) {
      domain::AbsVal<D> CA = alpha<D>(Cell.Value);
      if (!domain::AbsVal<D>::leq(CA, R.AD.valueOf(Cell.Var)))
        S.violation("direct store cell " +
                    std::string(Ctx.spelling(Cell.Var)) + " unsound");
      if (!domain::AbsVal<D>::leq(CA, R.AS.valueOf(Cell.Var)))
        S.violation("semantic store cell " +
                    std::string(Ctx.spelling(Cell.Var)) + " unsound");
      if (!domain::AbsVal<D>::leq(CA, R.APd.valueOf(Cell.Var)))
        S.violation("pushdown store cell " +
                    std::string(Ctx.spelling(Cell.Var)) + " unsound");
    }
  }
  if (R.CCR.ok()) {
    if (!domain::CpsAbsVal<D>::leq(alphaCps<D>(R.CCR.Value),
                                   R.AC.Answer.Value))
      S.violation("syntactic value " + str(Ctx, R.CCR.Value) +
                  " not below " + R.AC.Answer.Value.str(Ctx));
    for (const auto &Cell : R.CCI.store().cells())
      if (!domain::CpsAbsVal<D>::leq(alphaCps<D>(Cell.Value),
                                     R.AC.valueOf(Cell.Var)))
        S.violation("cps store cell " +
                    std::string(Ctx.spelling(Cell.Var)) + " unsound");
  }
}

template <typename D>
void checkO3(OracleScope S, const Context &Ctx, Runs<D> &R) {
  if (S.injectionTripped())
    return;
  if (R.AD.Stats.BudgetExhausted || R.AS.Stats.BudgetExhausted ||
      R.AC.Stats.BudgetExhausted)
    return;
  S.markChecked();

  std::vector<Symbol> Vars = syntax::collectVariables(R.T);

  // Theorem 5.4: semantic at least as precise as direct — for cut-free
  // runs only. A Section 4.4 cut is delivered to the continuation in the
  // semantic analyzer (widening its downstream bindings *and* its final
  // answer toward top) but returned as the goal answer in the direct one
  // (whose store and answer stay exact), so when the semantic leg cuts a
  // recursion the direct leg resolves — church-numeral towers are the
  // canonical case — the inversion is an artifact of the terminating
  // analyses, not a theorem violation, and neither half of the relation
  // is guaranteed. (5.5 below is different: both CPS analyzers widen
  // their answers at a cut, so its value half survives.)
  if (R.AS.Stats.Cuts == 0 && R.AD.Stats.Cuts == 0) {
    Comparison C54 = compareDirectWorld<D>(Ctx, R.AS, R.AD, Vars);
    if (C54.Overall != PrecisionOrder::Equal &&
        C54.Overall != PrecisionOrder::LeftMorePrecise)
      S.violation(std::string("5.4: semantic vs direct is '") +
                  str(C54.Overall) + "'");
  }

  // Theorem 5.5: semantic at least as precise as syntactic. The full
  // (store-inclusive) relation only holds for cut-free terminating
  // analyses; under cuts only the answer half is required (see
  // tests/SoundnessTests.cpp for why).
  Comparison C55 = compareWithSyntactic<D>(Ctx, R.AS, R.AC, *R.P, Vars);
  if (R.AS.Stats.Cuts == 0 && R.AC.Stats.Cuts == 0) {
    if (C55.Overall != PrecisionOrder::Equal &&
        C55.Overall != PrecisionOrder::LeftMorePrecise)
      S.violation(std::string("5.5: semantic vs syntactic is '") +
                  str(C55.Overall) + "'");
  } else if (C55.OnValue != PrecisionOrder::Equal &&
             C55.OnValue != PrecisionOrder::LeftMorePrecise) {
    S.violation(std::string("5.5 (value, under cuts): '") +
                str(C55.OnValue) + "'");
  }
}

/// O7: the pushdown analyzer's contract (ISSUE 9 / DESIGN.md section 15).
///
/// Clause A (dominance): pushdown is never less precise than syntactic
/// CPS. Summarization re-walks the continuation once per distinct callee
/// answer instead of merging continuations at the call site, so every
/// path class the syntactic analysis conflates stays separate. The cut
/// scoping is Theorem 5.5's: both analyzers widen their answers toward
/// top at a cut, so the value half of the relation survives cuts, while
/// the store half is only required when both legs are cut-free.
///
/// Clause B (direct equivalence): on merge-free runs — both legs
/// cut-free, the direct leg performed no joins, and neither leg lost a
/// path — both analyses walk the identical single path class, so answer
/// and store must match exactly. (Full equivalence on all cut-free runs
/// is too strong: direct is MFP, pushdown is MOP, and a joined-then-
/// refuted branch or a dead path legitimately separates them — that is
/// Theorem 5.2's duplication direction.)
template <typename D>
void checkO7(OracleScope S, const Context &Ctx, Runs<D> &R) {
  if (S.injectionTripped())
    return;
  if (R.APd.Stats.BudgetExhausted || R.AC.Stats.BudgetExhausted ||
      R.AD.Stats.BudgetExhausted)
    return;
  S.markChecked();

  std::vector<Symbol> Vars = syntax::collectVariables(R.T);

  Comparison PvC = compareWithSyntactic<D>(Ctx, R.APd, R.AC, *R.P, Vars);
  if (R.APd.Stats.Cuts == 0 && R.AC.Stats.Cuts == 0) {
    if (PvC.Overall != PrecisionOrder::Equal &&
        PvC.Overall != PrecisionOrder::LeftMorePrecise)
      S.violation(std::string("dominance: pushdown vs syntactic is '") +
                  str(PvC.Overall) + "'");
  } else if (PvC.OnValue != PrecisionOrder::Equal &&
             PvC.OnValue != PrecisionOrder::LeftMorePrecise) {
    S.violation(std::string("dominance (value, under cuts): '") +
                str(PvC.OnValue) + "'");
  }

  if (R.APd.Stats.Cuts == 0 && R.AD.Stats.Cuts == 0) {
    Comparison PvD = compareDirectWorld<D>(Ctx, R.APd, R.AD, Vars);
    bool MergeFree = R.AD.Stats.Joins == 0 && R.AD.Stats.DeadPaths == 0 &&
                     R.APd.Stats.DeadPaths == 0;
    if (MergeFree) {
      if (PvD.Overall != PrecisionOrder::Equal)
        S.violation(std::string("pushdown vs direct on a merge-free run "
                                "is '") +
                    str(PvD.Overall) + "'");
    } else if (PvD.Overall != PrecisionOrder::Equal &&
               PvD.Overall != PrecisionOrder::LeftMorePrecise) {
      // Cut-free, pushdown must still be at least as precise as direct
      // (the MOP-vs-MFP half of Theorem 5.4, with call-return matching
      // standing in for semantic's per-path continuations).
      S.violation(std::string("pushdown vs direct (cut-free) is '") +
                  str(PvD.Overall) + "'");
    }
  }
}

template <typename D>
void checkO4(OracleScope S, const Context &Ctx, Runs<D> &R,
             const OracleOptions &Opts, const AnalyzerOptions &AOpts) {
  if (S.injectionTripped())
    return;
  S.markChecked();

  auto Init = absBindings<D>(R.T, Opts.Inputs);
  auto CInit = absCpsBindings<D>(R.T, Opts.Inputs);
  std::string Why;
  auto Check = [&](const char *Leg, const auto &New, const auto &Ref) {
    if (!(New.Answer == Ref.Answer))
      S.violation(std::string(Leg) + ": answer differs from reference");
    else if (!statsEq(New.Stats, Ref.Stats, &Why))
      S.violation(std::string(Leg) + ": stats differ from reference (" +
                  Why + ")");
  };
  Check("direct", R.AD,
        refimpl::RefDirectAnalyzer<D>(Ctx, R.T, Init, AOpts).run());
  Check("semantic", R.AS,
        refimpl::RefSemanticCpsAnalyzer<D>(Ctx, R.T, Init, AOpts).run());
  Check("syntactic", R.AC,
        refimpl::RefSyntacticCpsAnalyzer<D>(Ctx, *R.P, CInit, AOpts).run());
  Check("dup", R.ADup,
        refimpl::RefDupAnalyzer<D>(Ctx, R.T, Init,
                                   static_cast<uint32_t>(Opts.DupBudget),
                                   AOpts)
            .run());

  // Continuation summaries are an evaluation strategy, not a semantics:
  // a summarized syntactic run must reproduce the unsummarized answer
  // and final store bitwise (DESIGN.md section 12). Stats legitimately
  // differ (that is the point), so only the answer is compared.
  {
    AnalyzerOptions SumOpts = AOpts;
    SumOpts.UseSummaries = true;
    auto Sum = SyntacticCpsAnalyzer<D>(Ctx, *R.P, CInit, SumOpts).run();
    if (!(Sum.Answer == R.AC.Answer))
      S.violation("syntactic: summarized answer differs from the "
                  "unsummarized reference");
  }
}

template <typename D>
void checkO5(OracleScope S, const std::string &Source, const Context &Ctx,
             Runs<D> &R, const OracleOptions &Opts,
             const AnalyzerOptions &AOpts) {
  if (S.injectionTripped())
    return;
  S.markChecked();

  // Replay the whole pipeline in a fresh Context: parse, normalize,
  // transform, analyze. Everything — rendered answers and work counters —
  // must reproduce exactly, or results depend on allocation addresses or
  // container iteration order.
  Context Ctx2;
  Result<const syntax::Term *> Raw2 = syntax::parseSugaredProgram(Ctx2, Source);
  if (!Raw2) {
    S.violation("reparse failed: " + Raw2.error().Message);
    return;
  }
  const syntax::Term *T2 = anf::normalizeProgram(Ctx2, *Raw2);
  Result<cps::CpsProgram> P2 = cps::cpsTransform(Ctx2, T2);
  if (!P2) {
    S.violation("re-transform failed: " + P2.error().Message);
    return;
  }

  std::string Why;
  auto Check = [&](const char *Leg, const auto &First, const auto &Second,
                   const Context &FirstCtx) {
    if (First.Answer.Value.str(FirstCtx) != Second.Answer.Value.str(Ctx2))
      S.violation(std::string(Leg) + ": answer not reproducible: '" +
                  First.Answer.Value.str(FirstCtx) + "' vs '" +
                  Second.Answer.Value.str(Ctx2) + "'");
    else if (!statsEq(First.Stats, Second.Stats, &Why))
      S.violation(std::string(Leg) + ": stats not reproducible (" + Why +
                  ")");
  };
  auto Init2 = absBindings<D>(T2, Opts.Inputs);
  auto CInit2 = absCpsBindings<D>(T2, Opts.Inputs);
  Check("direct", R.AD,
        DirectAnalyzer<D>(Ctx2, T2, Init2, AOpts).run(), Ctx);
  Check("semantic", R.AS,
        SemanticCpsAnalyzer<D>(Ctx2, T2, Init2, AOpts).run(), Ctx);
  Check("syntactic", R.AC,
        SyntacticCpsAnalyzer<D>(Ctx2, *P2, CInit2, AOpts).run(), Ctx);
  Check("dup", R.ADup,
        DupAnalyzer<D>(Ctx2, T2, Init2, Opts.DupBudget, AOpts).run(), Ctx);
  Check("pushdown", R.APd,
        PushdownAnalyzer<D>(Ctx2, T2, Init2, AOpts).run(), Ctx);
}

template <typename D>
void checkO6(OracleScope S, const Context &Ctx, Runs<D> &R,
             const OracleOptions &Opts, const AnalyzerOptions &AOpts) {
  if (S.injectionTripped())
    return;
  S.markChecked();

  auto Init = absBindings<D>(R.T, Opts.Inputs);
  auto CInit = absCpsBindings<D>(R.T, Opts.Inputs);

  // Force a budget trip at half the ungoverned goal count, then require
  // the degraded answer to over-approximate the ungoverned one — the
  // tests/GovernorTests.cpp expectSoundTrip invariant, hunted at scale.
  auto CheckVal = [&](const char *Leg, const auto &Full, const auto &Gov) {
    using V = std::decay_t<decltype(Full.Answer.Value)>;
    if (!V::leq(Full.Answer.Value, Gov.Answer.Value))
      S.violation(std::string(Leg) + ": degraded answer " +
                  Gov.Answer.Value.str(Ctx) +
                  " more precise than ungoverned " +
                  Full.Answer.Value.str(Ctx));
  };
  AnalyzerOptions Half = AOpts;
  Half.MaxGoals = std::max<uint64_t>(1, R.AD.Stats.Goals / 2);
  CheckVal("direct", R.AD, DirectAnalyzer<D>(Ctx, R.T, Init, Half).run());
  Half.MaxGoals = std::max<uint64_t>(1, R.AS.Stats.Goals / 2);
  CheckVal("semantic", R.AS,
           SemanticCpsAnalyzer<D>(Ctx, R.T, Init, Half).run());
  Half.MaxGoals = std::max<uint64_t>(1, R.AC.Stats.Goals / 2);
  CheckVal("syntactic", R.AC,
           SyntacticCpsAnalyzer<D>(Ctx, *R.P, CInit, Half).run());
  Half.MaxGoals = std::max<uint64_t>(1, R.APd.Stats.Goals / 2);
  CheckVal("pushdown", R.APd,
           PushdownAnalyzer<D>(Ctx, R.T, Init, Half).run());

  // Same soundness through the governor proper: cap the goal-stack depth
  // at half the observed maximum (DegradeReason::Depth path).
  AnalyzerOptions Deep = AOpts;
  Deep.Governor.MaxDepth =
      std::max<uint32_t>(1, static_cast<uint32_t>(R.AD.Stats.MaxDepth / 2));
  Deep.Governor.CheckPeriod = 1;
  CheckVal("direct-depth", R.AD,
           DirectAnalyzer<D>(Ctx, R.T, Init, Deep).run());
}

template <typename D>
Result<OracleOutcome> checkAt(const std::string &Source,
                              const OracleOptions &Opts) {
  OracleOutcome Out;

  Context Ctx;
  Result<const syntax::Term *> Raw = syntax::parseSugaredProgram(Ctx, Source);
  if (!Raw)
    return Error("parse: " + Raw.error().Message);
  const syntax::Term *T = anf::normalizeProgram(Ctx, *Raw);
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
  if (!P)
    return Error("cps: " + P.error().Message);

  RunLimits Limits;
  Limits.MaxSteps = Opts.MaxSteps;
  Runs<D> R(Ctx, Limits);
  R.T = T;
  R.P = &*P;

  // Concrete runs (O1, O2).
  R.CR = R.CI.run(T, intBindings(T, Opts.Inputs));
  R.SR = R.SI.run(T, intBindings(T, Opts.Inputs));
  R.CCR = R.CCI.run(*P, intCpsBindings(T, Opts.Inputs));

  // Baseline abstract runs, shared by O2..O7 (ungoverned unless the
  // caller set governor knobs).
  AnalyzerOptions AOpts;
  AOpts.MaxGoals = Opts.MaxGoals;
  AOpts.LoopUnroll = Opts.LoopUnroll;
  AOpts.Metrics = Opts.Metrics;
  AOpts.Trace = Opts.Trace;
  AOpts.TraceTid = Opts.TraceTid;
  AOpts.Governor.MaxStoreBytes = Opts.MaxStoreBytes;
  AOpts.Governor.MaxDepth = Opts.MaxDepth;
  AOpts.Governor.Interrupt = Opts.Interrupt;
  if (Opts.DeadlineMs > 0)
    AOpts.Governor.deadlineIn(Opts.DeadlineMs);
  R.AD = DirectAnalyzer<D>(Ctx, T, absBindings<D>(T, Opts.Inputs), AOpts)
             .run();
  R.AS = SemanticCpsAnalyzer<D>(Ctx, T, absBindings<D>(T, Opts.Inputs),
                                AOpts)
             .run();
  R.AC = SyntacticCpsAnalyzer<D>(Ctx, *P, absCpsBindings<D>(T, Opts.Inputs),
                                 AOpts)
             .run();
  R.ADup = DupAnalyzer<D>(Ctx, T, absBindings<D>(T, Opts.Inputs),
                          Opts.DupBudget, AOpts)
               .run();
  R.APd = PushdownAnalyzer<D>(Ctx, T, absBindings<D>(T, Opts.Inputs),
                              AOpts)
              .run();
  Out.LegStats[LegDirect] = R.AD.Stats;
  Out.LegStats[LegSemantic] = R.AS.Stats;
  Out.LegStats[LegSyntactic] = R.AC.Stats;
  Out.LegStats[LegDup] = R.ADup.Stats;
  Out.LegStats[LegPushdown] = R.APd.Stats;

  if (Opts.Mask & maskOf(OracleId::InterpAgreement))
    checkO1<D>(OracleScope(OracleId::InterpAgreement, Out), Ctx, R);
  if (Opts.Mask & maskOf(OracleId::Soundness))
    checkO2<D>(OracleScope(OracleId::Soundness, Out), Ctx, R);
  if (Opts.Mask & maskOf(OracleId::PrecisionOrder))
    checkO3<D>(OracleScope(OracleId::PrecisionOrder, Out), Ctx, R);
  if (Opts.Mask & maskOf(OracleId::ReferenceMatch))
    checkO4<D>(OracleScope(OracleId::ReferenceMatch, Out), Ctx, R, Opts,
               AOpts);
  if (Opts.Mask & maskOf(OracleId::Determinism))
    checkO5<D>(OracleScope(OracleId::Determinism, Out), Source, Ctx, R,
               Opts, AOpts);
  if (Opts.Mask & maskOf(OracleId::GovernedDegrade))
    checkO6<D>(OracleScope(OracleId::GovernedDegrade, Out), Ctx, R, Opts,
               AOpts);
  if (Opts.Mask & maskOf(OracleId::PushdownOrder))
    checkO7<D>(OracleScope(OracleId::PushdownOrder, Out), Ctx, R);
  return Out;
}

} // namespace

Result<OracleOutcome> checkSource(const std::string &Source,
                                  const OracleOptions &Opts) {
  if (Opts.Domain == "constant")
    return checkAt<domain::ConstantDomain>(Source, Opts);
  if (Opts.Domain == "unit")
    return checkAt<domain::UnitDomain>(Source, Opts);
  if (Opts.Domain == "sign")
    return checkAt<domain::SignDomain>(Source, Opts);
  if (Opts.Domain == "parity")
    return checkAt<domain::ParityDomain>(Source, Opts);
  if (Opts.Domain == "interval")
    return checkAt<domain::IntervalDomain>(Source, Opts);
  return Error("unknown domain '" + Opts.Domain +
               "' (want constant|unit|sign|parity|interval)");
}

} // namespace fuzz
} // namespace cpsflow
