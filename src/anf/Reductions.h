//===- anf/Reductions.h - The A-reductions, step by step --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The A-reductions as a single-step rewrite system.
///
/// Section 2 of the paper says "the normalization process uses the
/// reductions that we identified in previous work as the A-reductions"
/// (Flanagan/Sabry/Duba/Felleisen, PLDI 1993; Sabry/Felleisen, LFP 1992).
/// anf::normalize implements the composite transformation; this module
/// implements the reductions themselves, one step at a time, so the
/// normalization can be *observed* (and so the two implementations check
/// each other: tests verify that stepping to a fixed point yields a term
/// alpha-equivalent to the one-shot normalizer's output).
///
/// With E ranging over call-by-value evaluation contexts, the steps are:
///
/// \code
///   (A1)  E[(let (x M1) M2)]   -->  (let (x M1) E[M2])        E nontrivial
///   (A2)  E[(if0 V M1 M2)]     -->  (let (t (if0 V M1 M2)) E[t])
///                                   unless E = (let (x []) N) or trivial*
///   (A3)  E[(V1 V2)]           -->  (let (t (V1 V2)) E[t])    likewise
///   (A4)  E[(loop)]            -->  (let (t (loop)) E[t])     likewise
///   (xi)  reduce under lambda and inside the branches of a let-bound if0
/// \endcode
///
/// *In this paper's restricted target even tail conditionals and calls
/// are named (`(let (t _) t)`), so A2-A4 also fire with the empty context
/// — that is the one difference from the PLDI'93 formulation, matching
/// footnote 2's example normal forms.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANF_REDUCTIONS_H
#define CPSFLOW_ANF_REDUCTIONS_H

#include "support/Result.h"
#include "syntax/Ast.h"

#include <optional>

namespace cpsflow {
namespace anf {

/// Which A-reduction fired.
enum class ARule : uint8_t {
  A1_LiftLet,  ///< hoist a let out of an evaluation context
  A2_NameIf0,  ///< name the result of a conditional
  A3_NameApp,  ///< name the result of an application
  A4_NameLoop, ///< name the result of a loop
};

/// Renders a rule name ("A1", ...).
const char *str(ARule Rule);

/// One reduction step.
struct AStep {
  const syntax::Term *Next; ///< the reduct
  ARule Rule;               ///< which reduction fired (innermost report)
};

/// Performs one leftmost-outermost A-reduction step on \p T.
/// \returns nullopt iff \p T is already in A-normal form.
std::optional<AStep> stepA(Context &Ctx, const syntax::Term *T);

/// Applies stepA to a fixed point (at most \p MaxSteps times).
/// \returns the normal form, or an error if the budget is exhausted
/// (which would indicate a non-terminating bug — the A-reductions are
/// strongly normalizing).
Result<const syntax::Term *> normalizeBySteps(Context &Ctx,
                                              const syntax::Term *T,
                                              size_t MaxSteps = 100000);

} // namespace anf
} // namespace cpsflow

#endif // CPSFLOW_ANF_REDUCTIONS_H
