//===- tests/InternEquivalenceTests.cpp - Interned == seed ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-consed-store analyzers are a pure representation change: on
/// every program they must produce bitwise-identical answers, stores, and
/// run statistics (everything except wall time) to the seed
/// implementations, which are preserved verbatim under tests/reference/
/// as refimpl::Ref* oracles. Checked bounded-exhaustively over the
/// two-let universe and on the paper's workload families.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "cps/Transform.h"
#include "gen/Enumerate.h"
#include "gen/Workloads.h"
#include "reference/RefDirectAnalyzer.h"
#include "reference/RefDupAnalyzer.h"
#include "reference/RefSemanticCpsAnalyzer.h"
#include "reference/RefSyntacticCpsAnalyzer.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::analysis;
using CD = domain::ConstantDomain;

namespace {

void expectStatsEq(const AnalyzerStats &New, const AnalyzerStats &Ref,
                   const std::string &What) {
  EXPECT_EQ(New.Goals, Ref.Goals) << What;
  EXPECT_EQ(New.CacheHits, Ref.CacheHits) << What;
  EXPECT_EQ(New.Cuts, Ref.Cuts) << What;
  EXPECT_EQ(New.MaxDepth, Ref.MaxDepth) << What;
  EXPECT_EQ(New.DeadPaths, Ref.DeadPaths) << What;
  EXPECT_EQ(New.PrunedBranches, Ref.PrunedBranches) << What;
  EXPECT_EQ(New.BudgetExhausted, Ref.BudgetExhausted) << What;
  EXPECT_EQ(New.LoopBounded, Ref.LoopBounded) << What;
}

template <typename R>
void expectResultEq(const R &New, const R &Ref, const std::string &What) {
  EXPECT_TRUE(New.Answer == Ref.Answer) << What;
  expectStatsEq(New.Stats, Ref.Stats, What);
}

/// Runs all four (new, reference) analyzer pairs on one program and
/// asserts equality. \p Init/\p CInit seed the stores; the dup leg uses
/// \p Budget.
void checkProgram(const Context &Ctx, const syntax::Term *Anf,
                  const cps::CpsProgram &Cps,
                  const std::vector<DirectBinding<CD>> &Init,
                  const std::vector<CpsBinding<CD>> &CInit,
                  uint32_t Budget, const std::string &What) {
  expectResultEq(DirectAnalyzer<CD>(Ctx, Anf, Init).run(),
                 refimpl::RefDirectAnalyzer<CD>(Ctx, Anf, Init).run(),
                 "direct: " + What);
  expectResultEq(SemanticCpsAnalyzer<CD>(Ctx, Anf, Init).run(),
                 refimpl::RefSemanticCpsAnalyzer<CD>(Ctx, Anf, Init).run(),
                 "semantic: " + What);
  auto SynRef = refimpl::RefSyntacticCpsAnalyzer<CD>(Ctx, Cps, CInit).run();
  expectResultEq(SyntacticCpsAnalyzer<CD>(Ctx, Cps, CInit).run(), SynRef,
                 "syntactic: " + What);
  // Continuation summarization is answer-exact: the summarized run must
  // agree bitwise on the answer (work counters legitimately differ).
  AnalyzerOptions SumOpts;
  SumOpts.UseSummaries = true;
  EXPECT_TRUE(SyntacticCpsAnalyzer<CD>(Ctx, Cps, CInit, SumOpts)
                  .run()
                  .Answer == SynRef.Answer)
      << "summarized syntactic: " << What;
  expectResultEq(
      DupAnalyzer<CD>(Ctx, Anf, Init, Budget).run(),
      refimpl::RefDupAnalyzer<CD>(Ctx, Anf, Init, Budget).run(),
      "dup: " + What);
}

TEST(InternEquivalence, EveryTwoLetProgram) {
  Context Ctx;
  gen::EnumOptions Opts;
  Opts.Lets = 2;
  size_t Checked = 0;
  gen::enumeratePrograms(Ctx, Opts, [&](const syntax::Term *T) {
    Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, T);
    ASSERT_TRUE(P.hasValue());
    std::vector<DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(T))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
    std::vector<CpsBinding<CD>> CInit;
    for (const DirectBinding<CD> &B : Init)
      CInit.push_back({B.Var, deltaE<CD>(B.Value, *P)});
    checkProgram(Ctx, T, *P, Init, CInit, 2, syntax::print(Ctx, T));
    ++Checked;
  });
  EXPECT_EQ(Checked, 1326u);
}

void checkWitness(const Context &Ctx, const Witness &W) {
  checkProgram(Ctx, W.Anf, W.Cps, directBindings<CD>(W),
               cpsBindings<CD>(W), 2, W.Name);
}

TEST(InternEquivalence, TheoremWitnesses) {
  Context Ctx;
  checkWitness(Ctx, theorem51(Ctx));
  checkWitness(Ctx, theorem52a(Ctx));
  checkWitness(Ctx, theorem52b(Ctx));
}

TEST(InternEquivalence, WorkloadFamilies) {
  Context Ctx;
  checkWitness(Ctx, gen::conditionalChain(Ctx, 6));
  checkWitness(Ctx, gen::convergingChain(Ctx, 8));
  checkWitness(Ctx, gen::callMergeChain(Ctx, 4));
  checkWitness(Ctx, gen::closureTower(Ctx, 8));
  checkWitness(Ctx, gen::loopProbe(Ctx, 3));
  checkWitness(Ctx, gen::omega(Ctx));
  checkWitness(Ctx, gen::counterLoop(Ctx, 5));
}

/// Budget sweep on a duplication workload: the dup analyzer's credit
/// dimension multiplies the key space, the place where a key
/// representation bug would most likely show.
TEST(InternEquivalence, DupBudgetSweep) {
  Context Ctx;
  Witness W = gen::conditionalChain(Ctx, 5);
  for (uint32_t Budget : {0u, 1u, 2u, 4u, 8u}) {
    auto New = DupAnalyzer<CD>(Ctx, W.Anf, directBindings<CD>(W), Budget)
                   .run();
    auto Ref = refimpl::RefDupAnalyzer<CD>(Ctx, W.Anf,
                                           directBindings<CD>(W), Budget)
                   .run();
    expectResultEq(New, Ref, "budget " + std::to_string(Budget));
  }
}

} // namespace
