//===- gen/Enumerate.cpp - Bounded-exhaustive enumeration -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Enumerate.h"

#include "anf/Anf.h"
#include "syntax/Builder.h"

#include <cassert>
#include <string>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::gen;
using namespace cpsflow::syntax;

namespace {

class Enumerator {
public:
  Enumerator(Context &Ctx, const EnumOptions &Opts,
             const std::function<void(const Term *)> &Visit)
      : Ctx(Ctx), B(Ctx), Opts(Opts), Visit(Visit) {
    for (uint32_t I = 0; I < Opts.Lets; ++I)
      Xs.push_back(Ctx.intern("e" + std::to_string(I)));
    if (Opts.WithFreeVar)
      Scope.push_back(Ctx.intern("z"));
  }

  size_t run() {
    chain(0);
    return Count;
  }

private:
  /// All candidate operand values for the current scope.
  std::vector<const Value *> operands() {
    std::vector<const Value *> Out;
    Out.push_back(B.num(0));
    Out.push_back(B.num(1));
    for (Symbol S : Scope)
      Out.push_back(B.var(S));
    return Out;
  }

  /// All candidate bindings for position \p I (with the current scope).
  std::vector<const Term *> bindings(uint32_t I) {
    std::vector<const Term *> Out;
    std::vector<const Value *> Vs = operands();

    // Plain value bindings.
    for (const Value *V : Vs)
      Out.push_back(B.val(V));

    // Primitive applications.
    for (const Value *V : Vs) {
      Out.push_back(B.appVV(B.add1(), V));
      Out.push_back(B.appVV(B.sub1(), V));
    }

    // Variable applications (operator must be a variable to have a chance
    // of being a procedure).
    for (Symbol F : Scope)
      for (const Value *V : Vs)
        Out.push_back(B.appVV(B.var(F), V));

    // Lambda shapes, with binders unique per position.
    if (Opts.WithLambdas) {
      Symbol P1 = Ctx.intern("p" + std::to_string(I) + "a");
      Out.push_back(B.val(B.lam(P1, B.varTerm(P1))));
      Symbol P2 = Ctx.intern("p" + std::to_string(I) + "b");
      Symbol Q = Ctx.intern("q" + std::to_string(I) + "b");
      Out.push_back(B.val(B.lam(
          P2, B.let(Q, B.appVV(B.add1(), B.var(P2)), B.varTerm(Q)))));
    }

    // Two-sided conditionals over scope values with numeral branches.
    if (Opts.WithConditionals)
      for (const Value *V : Vs)
        Out.push_back(B.if0(B.val(V), B.numTerm(0), B.numTerm(1)));

    return Out;
  }

  void chain(uint32_t I) {
    if (I == Opts.Lets) {
      // Final result: each in-scope variable (covers using everything).
      for (Symbol S : Scope) {
        const Term *Program = rebuild(B.varTerm(S));
        assert(anf::isAnfQuick(Program) && "enumerated non-ANF program");
        ++Count;
        Visit(Program);
      }
      return;
    }
    for (const Term *Bound : bindings(I)) {
      Chosen.push_back(Bound);
      Scope.push_back(Xs[I]);
      chain(I + 1);
      Scope.pop_back();
      Chosen.pop_back();
    }
  }

  const Term *rebuild(const Term *Tail) {
    const Term *T = Tail;
    for (uint32_t I = Opts.Lets; I-- > 0;)
      T = B.let(Xs[I], Chosen[I], T);
    return T;
  }

  Context &Ctx;
  Builder B;
  EnumOptions Opts;
  const std::function<void(const Term *)> &Visit;
  std::vector<Symbol> Xs;
  std::vector<Symbol> Scope;
  std::vector<const Term *> Chosen;
  size_t Count = 0;
};

} // namespace

size_t cpsflow::gen::enumeratePrograms(
    Context &Ctx, const EnumOptions &Opts,
    const std::function<void(const syntax::Term *)> &Visit) {
  return Enumerator(Ctx, Opts, Visit).run();
}
