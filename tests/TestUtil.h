//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_TESTS_TESTUTIL_H
#define CPSFLOW_TESTS_TESTUTIL_H

#include "interp/Direct.h"
#include "interp/SemanticCps.h"
#include "interp/SyntacticCps.h"
#include "syntax/Analysis.h"
#include "syntax/Parser.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace cpsflow {
namespace test {

/// Parses or aborts the test.
inline const syntax::Term *mustParse(Context &Ctx, const std::string &Text) {
  Result<const syntax::Term *> R = syntax::parseTerm(Ctx, Text);
  EXPECT_TRUE(R.hasValue()) << (R.hasValue() ? "" : R.error().str());
  return R.hasValue() ? *R : nullptr;
}

/// Integer bindings for the free variables of \p T, in symbol order,
/// cycling through \p Ints.
inline std::vector<interp::InitialBinding>
intBindings(const syntax::Term *T, const std::vector<int64_t> &Ints) {
  std::vector<interp::InitialBinding> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(interp::InitialBinding{S, interp::RtValue::number(V)});
  }
  return Out;
}

/// The same bindings for a CPS run (numbers are their own delta image).
inline std::vector<interp::CpsInitialBinding>
intCpsBindings(const syntax::Term *T, const std::vector<int64_t> &Ints) {
  std::vector<interp::CpsInitialBinding> Out;
  size_t I = 0;
  for (Symbol S : syntax::freeVars(T)) {
    int64_t V = Ints.empty() ? 0 : Ints[I++ % Ints.size()];
    Out.push_back(
        interp::CpsInitialBinding{S, interp::CpsRtValue::number(V)});
  }
  return Out;
}

} // namespace test
} // namespace cpsflow

#endif // CPSFLOW_TESTS_TESTUTIL_H
