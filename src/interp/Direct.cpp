//===- interp/Direct.cpp - Figure 1: the direct interpreter -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Direct.h"

#include "syntax/Printer.h"

#include <sstream>

using namespace cpsflow;
using namespace cpsflow::interp;
using namespace cpsflow::syntax;

RunResult DirectInterp::run(const Term *Program,
                            const std::vector<InitialBinding> &Initial) {
  Result = RunResult();
  Result.Status = RunStatus::Ok;

  const EnvNode *Env = nullptr;
  for (const InitialBinding &B : Initial)
    Env = Envs.extend(Env, B.Var, TheStore.alloc(B.Var, B.Value));

  Partial P = evalTerm(Program, Env, 0);
  if (P.Ok)
    Result.Value = P.Value;
  else if (Result.Status == RunStatus::Ok)
    Result.Status = RunStatus::Stuck;
  return Result;
}

DirectInterp::Partial DirectInterp::evalValue(const Value *V,
                                              const EnvNode *Env) {
  switch (V->kind()) {
  case ValueKind::VK_Num:
    return Partial{true, RtValue::number(cast<NumValue>(V)->value())};
  case ValueKind::VK_Var: {
    const EnvNode *Binding = EnvArena::lookup(Env, cast<VarValue>(V)->name());
    if (!Binding)
      return fail(RunStatus::Stuck, "unbound variable");
    return Partial{true, TheStore.at(Binding->Location)};
  }
  case ValueKind::VK_Prim:
    return Partial{true, cast<PrimValue>(V)->op() == PrimOp::Add1
                             ? RtValue::inc()
                             : RtValue::dec()};
  case ValueKind::VK_Lam:
    return Partial{true, RtValue::closure(cast<LamValue>(V), Env)};
  }
  return fail(RunStatus::Stuck, "unknown value kind");
}

DirectInterp::Partial DirectInterp::evalTerm(const Term *T,
                                             const EnvNode *Env,
                                             uint32_t Depth) {
  if (!spendFuel())
    return fail(RunStatus::OutOfFuel, "step budget exceeded");
  if (Depth > Limits.MaxDepth)
    return fail(RunStatus::OutOfFuel, "recursion depth exceeded");

  if (TraceCtx && Trace.size() < MaxTrace) {
    std::ostringstream O;
    O << std::string(std::min<uint32_t>(Depth, 40), ' ') << "eval "
      << snippet(syntax::print(*TraceCtx, T));
    Trace.push_back(O.str());
  }

  switch (T->kind()) {
  case TermKind::TK_Value:
    return evalValue(cast<ValueTerm>(T)->value(), Env);

  case TermKind::TK_App: {
    const auto *App = cast<AppTerm>(T);
    Partial Fun = evalTerm(App->fun(), Env, Depth + 1);
    if (!Fun.Ok)
      return Fun;
    Partial Arg = evalTerm(App->arg(), Env, Depth + 1);
    if (!Arg.Ok)
      return Arg;
    return apply(Fun.Value, Arg.Value, Depth, App);
  }

  case TermKind::TK_Let: {
    const auto *Let = cast<LetTerm>(T);
    Partial Bound = evalTerm(Let->bound(), Env, Depth + 1);
    if (!Bound.Ok)
      return Bound;
    Loc L = TheStore.alloc(Let->var(), Bound.Value);
    return evalTerm(Let->body(), Envs.extend(Env, Let->var(), L), Depth + 1);
  }

  case TermKind::TK_If0: {
    const auto *If = cast<If0Term>(T);
    Partial Cond = evalTerm(If->cond(), Env, Depth + 1);
    if (!Cond.Ok)
      return Cond;
    // "i = 1 if u0 = 0, i = 2 otherwise": any non-zero answer, including a
    // closure, selects the else branch.
    bool TakeThen = Cond.Value.isNum() && Cond.Value.Num == 0;
    return evalTerm(TakeThen ? If->thenBranch() : If->elseBranch(), Env,
                    Depth + 1);
  }

  case TermKind::TK_Loop:
    // `loop` stands for `x := 0; while true x := x + 1`: it never returns.
    return fail(RunStatus::Diverged, "loop construct never returns");
  }
  return fail(RunStatus::Stuck, "unknown term kind");
}

DirectInterp::Partial DirectInterp::apply(const RtValue &Fun,
                                          const RtValue &Arg, uint32_t Depth,
                                          const syntax::AppTerm *Site) {
  if (!spendFuel())
    return fail(RunStatus::OutOfFuel, "step budget exceeded");
  if (Site && Fun.Tag == RtValue::Kind::Closure)
    CalleeLog[Site].insert(Fun.Lam);
  if (TraceCtx && Trace.size() < MaxTrace)
    Trace.push_back("  apply " + str(*TraceCtx, Fun) + " to " +
                    str(*TraceCtx, Arg));

  switch (Fun.Tag) {
  case RtValue::Kind::Inc:
    if (!Arg.isNum())
      return fail(RunStatus::Stuck, "add1 applied to a non-number");
    return Partial{true, RtValue::number(Arg.Num + 1)};
  case RtValue::Kind::Dec:
    if (!Arg.isNum())
      return fail(RunStatus::Stuck, "sub1 applied to a non-number");
    return Partial{true, RtValue::number(Arg.Num - 1)};
  case RtValue::Kind::Closure: {
    Loc L = TheStore.alloc(Fun.Lam->param(), Arg);
    const EnvNode *Env = Envs.extend(Fun.Env, Fun.Lam->param(), L);
    return evalTerm(Fun.Lam->body(), Env, Depth + 1);
  }
  case RtValue::Kind::Num:
    return fail(RunStatus::Stuck, "application of a number");
  }
  return fail(RunStatus::Stuck, "unknown applied value");
}
