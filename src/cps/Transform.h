//===- cps/Transform.h - The syntactic CPS transformation -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic CPS transformation F / V of Definition 3.2:
///
/// \code
///   F_k[V]                            = (k V[V])
///   F_k[(let (x V) M)]                = (let (x V[V]) F_k[M])
///   F_k[(let (x (V1 V2)) M)]          = (V[V1] V[V2] (lambda (x) F_k[M]))
///   F_k[(let (x (if0 V0 M1 M2)) M)]   = (let (k' (lambda (x) F_k[M]))
///                                          (if0 V[V0] F_k'[M1] F_k'[M2]))
///   F_k[(let (x (loop)) M)]           = (loopk (lambda (x) F_k[M]))   [ext]
///
///   V[n] = n        V[x] = x      V[add1] = add1k     V[sub1] = sub1k
///   V[(lambda (x) M)] = (lambda (x k') F_k'[M])
/// \endcode
///
/// The input must be in A-normal form. Continuation variables k' are fresh
/// KVars drawn from the reserved `k%N` namespace, disjoint from source
/// variables.
///
/// The result records the correspondence between source lambdas and their
/// CPS images — the syntactic content of the delta function of Lemma 3.3
/// and of its abstract counterpart delta_e (Section 5.1) — and between
/// source let-forms and the continuation lambdas they generate.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CPS_TRANSFORM_H
#define CPSFLOW_CPS_TRANSFORM_H

#include "cps/CpsAst.h"
#include "support/Result.h"
#include "syntax/Ast.h"

#include <unordered_map>
#include <vector>

namespace cpsflow {
namespace cps {

/// A CPS-transformed program plus the bookkeeping the comparisons need.
struct CpsProgram {
  /// The transformed term F_TopK[M].
  const CpsTerm *Root = nullptr;

  /// The initial continuation variable; interpreters and analyzers bind it
  /// to `stop` in the initial store (Lemma 3.3, Theorem 5.1).
  Symbol TopK;

  /// Source lambda -> its CPS image (the delta of user closures).
  std::unordered_map<const syntax::LamValue *, const CpsLam *> LamToCps;
  /// Inverse of LamToCps.
  std::unordered_map<const CpsLam *, const syntax::LamValue *> CpsToLam;

  /// Continuation lambda -> the source let (or the whole-program return for
  /// none) that produced it. Used to relate return points across analyses.
  std::unordered_map<const ContLam *, const syntax::LetTerm *> ContToLet;

  /// All continuation lambdas, in creation order (deterministic).
  std::vector<const ContLam *> ContLams;
  /// All CPS user lambdas, in creation order.
  std::vector<const CpsLam *> Lams;
  /// All continuation variables introduced (TopK, if0 joins, lambda
  /// k-params), in creation order.
  std::vector<Symbol> KVars;
};

/// Applies F / V to the A-normal-form term \p Anf.
/// \returns an error if \p Anf is not in A-normal form.
Result<CpsProgram> cpsTransform(Context &Ctx, const syntax::Term *Anf);

/// Transforms a source lambda that is *not* part of the program text —
/// e.g. a closure seeded into the initial abstract store of a theorem
/// witness — recording its image in \p Program's correspondence maps so
/// delta / delta_e cover it. \pre the lambda's body is in A-normal form.
const CpsLam *cpsTransformExtra(Context &Ctx, CpsProgram &Program,
                                const syntax::LamValue *Lam);

/// Single-line rendering of a cps(A) term in the Definition 3.2 syntax.
std::string printCps(const Context &Ctx, const CpsTerm *P);
/// Single-line rendering of a cps(A) value.
std::string printCps(const Context &Ctx, const CpsValue *W);
/// Multi-line rendering with two-space indentation per binding/call
/// nesting level.
std::string printCpsIndented(const Context &Ctx, const CpsTerm *P);

/// Number of CpsTerm/CpsValue/ContLam nodes in \p P.
size_t countCpsNodes(const CpsTerm *P);

/// All variables (Vars and KVars) bound or free in \p P, in symbol order.
std::vector<Symbol> collectCpsVariables(const CpsTerm *P, Symbol TopK);

/// All CPS user lambdas in \p P, in node-id order.
std::vector<const CpsLam *> collectCpsLams(const CpsTerm *P);

/// All continuation lambdas in \p P, in node-id order.
std::vector<const ContLam *> collectContLams(const CpsTerm *P);

} // namespace cps
} // namespace cpsflow

#endif // CPSFLOW_CPS_TRANSFORM_H
