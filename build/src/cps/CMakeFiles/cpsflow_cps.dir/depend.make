# Empty dependencies file for cpsflow_cps.
# This may be replaced when dependencies are built.
