file(REMOVE_RECURSE
  "CMakeFiles/memo_ablation.dir/memo_ablation.cpp.o"
  "CMakeFiles/memo_ablation.dir/memo_ablation.cpp.o.d"
  "memo_ablation"
  "memo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
