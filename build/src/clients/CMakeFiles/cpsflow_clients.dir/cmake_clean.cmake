file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_clients.dir/ConstFold.cpp.o"
  "CMakeFiles/cpsflow_clients.dir/ConstFold.cpp.o.d"
  "CMakeFiles/cpsflow_clients.dir/Inline.cpp.o"
  "CMakeFiles/cpsflow_clients.dir/Inline.cpp.o.d"
  "CMakeFiles/cpsflow_clients.dir/Reports.cpp.o"
  "CMakeFiles/cpsflow_clients.dir/Reports.cpp.o.d"
  "libcpsflow_clients.a"
  "libcpsflow_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
