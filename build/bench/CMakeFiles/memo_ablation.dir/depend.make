# Empty dependencies file for memo_ablation.
# This may be replaced when dependencies are built.
