//===- domain/NumDomain.h - Abstract numeric domains ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract numeric domains, pluggable into the three analyzers.
///
/// The paper's Section 4.2 approximates sets of numbers by the flat
/// constant-propagation lattice N (bottom, each n, top) — implemented here
/// as ConstantDomain. The analyzers are parameterized over the domain so
/// that Theorem 5.4's distributivity condition can be exercised:
///
///  * ConstantDomain — the paper's lattice; *non-distributive* (merging 0
///    and 1 before analyzing the continuation loses the per-path
///    constants of the Theorem 5.2 examples).
///  * UnitDomain — a one-point numeric domain (every number is "some
///    number"); the analysis degenerates to pure control-flow analysis
///    (0CFA), which is *distributive*, so by Theorem 5.4 the direct and
///    semantic-CPS analyzers coincide.
///  * SignDomain, ParityDomain — additional non-distributive clients
///    demonstrating that the framework supports "a large class of data
///    flow analyses" (the paper's claim for analyses that compute the
///    control-flow graph).
///
/// A domain D provides a value type D::Elem and the static operations
/// listed below. Elem must be default-constructible (to bottom),
/// copyable, and equality-comparable.
///
/// \code
///   static Elem bot();                 // least element
///   static Elem top();                 // greatest element
///   static Elem constant(int64_t);     // abstraction of a numeral
///   static Elem naturals();            // join of 0,1,2,... (loop rule)
///   static Elem join(Elem, Elem);
///   static bool leq(Elem, Elem);
///   static Elem add1(Elem);            // the paper's add1_e
///   static Elem sub1(Elem);            // the paper's sub1_e
///   static ZeroTest isZero(Elem);
///   static uint64_t hash(Elem);
///   static std::string str(Elem);
///   static constexpr const char *Name;
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_NUMDOMAIN_H
#define CPSFLOW_DOMAIN_NUMDOMAIN_H

#include "support/Hashing.h"

#include <algorithm>
#include <cstdint>
#include <string>

namespace cpsflow {
namespace domain {

/// What an abstract number says about the test `= 0` of if0.
enum class ZeroTest : uint8_t {
  Bottom,  ///< no concrete number reaches here
  Zero,    ///< definitely 0
  NonZero, ///< definitely not 0
  Maybe,   ///< could be either
};

//===----------------------------------------------------------------------===//
// ConstantDomain: bottom < each integer < top (Section 4.2)
//===----------------------------------------------------------------------===//

struct ConstantDomain {
  struct Elem {
    enum class K : uint8_t { Bot, Const, Top };
    K Kind = K::Bot;
    int64_t N = 0;

    friend bool operator==(const Elem &A, const Elem &B) {
      if (A.Kind != B.Kind)
        return false;
      return A.Kind != K::Const || A.N == B.N;
    }
  };

  static constexpr const char *Name = "constant";

  static Elem bot() { return Elem(); }
  static Elem top() { return Elem{Elem::K::Top, 0}; }
  static Elem constant(int64_t N) { return Elem{Elem::K::Const, N}; }
  static Elem naturals() { return top(); }

  static Elem join(const Elem &A, const Elem &B) {
    // Flat lattice, branch-reduced for the packed-store hot path: pick
    // the higher kind, promote to top when two distinct constants meet.
    // The selects compile to cmovs — no unpredictable branch per slot.
    Elem R = A.Kind >= B.Kind ? A : B;
    bool Clash = A.Kind == Elem::K::Const && B.Kind == Elem::K::Const &&
                 A.N != B.N;
    R.Kind = Clash ? Elem::K::Top : R.Kind;
    R.N = R.Kind == Elem::K::Const ? R.N : 0;
    return R;
  }

  static bool leq(const Elem &A, const Elem &B) {
    return A.Kind == Elem::K::Bot || B.Kind == Elem::K::Top || A == B;
  }

  static Elem add1(const Elem &E) {
    if (E.Kind == Elem::K::Const)
      return constant(E.N + 1);
    return E; // add1_e(bot) = bot, add1_e(top) = top
  }

  static Elem sub1(const Elem &E) {
    if (E.Kind == Elem::K::Const)
      return constant(E.N - 1);
    return E;
  }

  static ZeroTest isZero(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Bot:
      return ZeroTest::Bottom;
    case Elem::K::Const:
      return E.N == 0 ? ZeroTest::Zero : ZeroTest::NonZero;
    case Elem::K::Top:
      return ZeroTest::Maybe;
    }
    return ZeroTest::Bottom;
  }

  static uint64_t hash(const Elem &E) {
    uint64_t H = static_cast<uint64_t>(E.Kind);
    if (E.Kind == Elem::K::Const)
      hashCombine(H, static_cast<uint64_t>(E.N));
    return mix64(H);
  }

  static std::string str(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Bot:
      return "_|_";
    case Elem::K::Const:
      return std::to_string(E.N);
    case Elem::K::Top:
      return "T";
    }
    return "?";
  }
};

//===----------------------------------------------------------------------===//
// UnitDomain: bottom < top — pure control-flow analysis (distributive)
//===----------------------------------------------------------------------===//

struct UnitDomain {
  struct Elem {
    bool Present = false;
    friend bool operator==(const Elem &A, const Elem &B) {
      return A.Present == B.Present;
    }
  };

  static constexpr const char *Name = "unit";

  static Elem bot() { return Elem{false}; }
  static Elem top() { return Elem{true}; }
  static Elem constant(int64_t) { return top(); }
  static Elem naturals() { return top(); }

  static Elem join(const Elem &A, const Elem &B) {
    return Elem{A.Present || B.Present};
  }
  static bool leq(const Elem &A, const Elem &B) {
    return !A.Present || B.Present;
  }
  static Elem add1(const Elem &E) { return E; }
  static Elem sub1(const Elem &E) { return E; }

  static ZeroTest isZero(const Elem &E) {
    return E.Present ? ZeroTest::Maybe : ZeroTest::Bottom;
  }

  static uint64_t hash(const Elem &E) { return E.Present ? 1 : 0; }
  static std::string str(const Elem &E) { return E.Present ? "num" : "_|_"; }
};

//===----------------------------------------------------------------------===//
// SignDomain: bottom < {neg, zero, pos} < top
//===----------------------------------------------------------------------===//

struct SignDomain {
  struct Elem {
    enum class K : uint8_t { Bot, Neg, Zero, Pos, Top };
    K Kind = K::Bot;
    friend bool operator==(const Elem &A, const Elem &B) {
      return A.Kind == B.Kind;
    }
  };

  static constexpr const char *Name = "sign";

  static Elem bot() { return Elem{Elem::K::Bot}; }
  static Elem top() { return Elem{Elem::K::Top}; }
  static Elem constant(int64_t N) {
    if (N < 0)
      return Elem{Elem::K::Neg};
    if (N == 0)
      return Elem{Elem::K::Zero};
    return Elem{Elem::K::Pos};
  }
  static Elem naturals() { return top(); } // zero join pos = top here

  static Elem join(const Elem &A, const Elem &B) {
    if (A.Kind == Elem::K::Bot)
      return B;
    if (B.Kind == Elem::K::Bot)
      return A;
    if (A == B)
      return A;
    return top();
  }
  static bool leq(const Elem &A, const Elem &B) {
    if (A.Kind == Elem::K::Bot || B.Kind == Elem::K::Top)
      return true;
    return A == B;
  }

  static Elem add1(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Zero:
    case Elem::K::Pos:
      return Elem{Elem::K::Pos};
    case Elem::K::Neg: // -1 + 1 = 0, otherwise negative
      return top();
    default:
      return E;
    }
  }
  static Elem sub1(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Zero:
    case Elem::K::Neg:
      return Elem{Elem::K::Neg};
    case Elem::K::Pos: // 1 - 1 = 0, otherwise positive
      return top();
    default:
      return E;
    }
  }

  static ZeroTest isZero(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Bot:
      return ZeroTest::Bottom;
    case Elem::K::Zero:
      return ZeroTest::Zero;
    case Elem::K::Neg:
    case Elem::K::Pos:
      return ZeroTest::NonZero;
    case Elem::K::Top:
      return ZeroTest::Maybe;
    }
    return ZeroTest::Bottom;
  }

  static uint64_t hash(const Elem &E) {
    return mix64(static_cast<uint64_t>(E.Kind));
  }
  static std::string str(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Bot:
      return "_|_";
    case Elem::K::Neg:
      return "-";
    case Elem::K::Zero:
      return "0";
    case Elem::K::Pos:
      return "+";
    case Elem::K::Top:
      return "T";
    }
    return "?";
  }
};

//===----------------------------------------------------------------------===//
// ParityDomain: bottom < {even, odd} < top
//===----------------------------------------------------------------------===//

struct ParityDomain {
  struct Elem {
    enum class K : uint8_t { Bot, Even, Odd, Top };
    K Kind = K::Bot;
    friend bool operator==(const Elem &A, const Elem &B) {
      return A.Kind == B.Kind;
    }
  };

  static constexpr const char *Name = "parity";

  static Elem bot() { return Elem{Elem::K::Bot}; }
  static Elem top() { return Elem{Elem::K::Top}; }
  static Elem constant(int64_t N) {
    return Elem{(N % 2 == 0) ? Elem::K::Even : Elem::K::Odd};
  }
  static Elem naturals() { return top(); }

  static Elem join(const Elem &A, const Elem &B) {
    if (A.Kind == Elem::K::Bot)
      return B;
    if (B.Kind == Elem::K::Bot)
      return A;
    if (A == B)
      return A;
    return top();
  }
  static bool leq(const Elem &A, const Elem &B) {
    if (A.Kind == Elem::K::Bot || B.Kind == Elem::K::Top)
      return true;
    return A == B;
  }

  static Elem add1(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Even:
      return Elem{Elem::K::Odd};
    case Elem::K::Odd:
      return Elem{Elem::K::Even};
    default:
      return E;
    }
  }
  static Elem sub1(const Elem &E) { return add1(E); } // parity flip either way

  static ZeroTest isZero(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Bot:
      return ZeroTest::Bottom;
    case Elem::K::Odd:
      return ZeroTest::NonZero; // 0 is even
    case Elem::K::Even:
    case Elem::K::Top:
      return ZeroTest::Maybe;
    }
    return ZeroTest::Bottom;
  }

  static uint64_t hash(const Elem &E) {
    return mix64(static_cast<uint64_t>(E.Kind));
  }
  static std::string str(const Elem &E) {
    switch (E.Kind) {
    case Elem::K::Bot:
      return "_|_";
    case Elem::K::Even:
      return "even";
    case Elem::K::Odd:
      return "odd";
    case Elem::K::Top:
      return "T";
    }
    return "?";
  }
};

//===----------------------------------------------------------------------===//
// IntervalDomain: clamped integer intervals
//===----------------------------------------------------------------------===//

/// A bounded-height interval domain: [lo, hi] with finite bounds clamped
/// to [-Clamp, Clamp] and the infinities beyond. Clamping keeps every
/// ascending chain finite, so the Section 4.4 termination argument (no
/// infinite ascending chains in the store lattice) applies unchanged and
/// no separate widening operator is needed. This is the "richer client"
/// extension: the analyzers are domain-polymorphic, so intervals slot in
/// without touching analyzer code.
struct IntervalDomain {
  /// Clamp boundary for finite endpoints.
  static constexpr int64_t Clamp = 16;
  /// Sentinels for the infinite endpoints (outside the clamp range).
  static constexpr int64_t NegInf = INT64_MIN;
  static constexpr int64_t PosInf = INT64_MAX;

  struct Elem {
    bool IsBot = true;
    int64_t Lo = 0; ///< NegInf or in [-Clamp, Clamp]
    int64_t Hi = 0; ///< PosInf or in [-Clamp, Clamp]

    friend bool operator==(const Elem &A, const Elem &B) {
      if (A.IsBot != B.IsBot)
        return false;
      return A.IsBot || (A.Lo == B.Lo && A.Hi == B.Hi);
    }
  };

  static constexpr const char *Name = "interval";

  static Elem bot() { return Elem(); }
  static Elem top() { return Elem{false, NegInf, PosInf}; }

  /// Clamps finite endpoints into the representable range, widening past
  /// the boundary to the corresponding infinity.
  static Elem make(int64_t Lo, int64_t Hi) {
    Elem E;
    E.IsBot = false;
    E.Lo = (Lo == NegInf || Lo < -Clamp) ? NegInf : Lo;
    E.Hi = (Hi == PosInf || Hi > Clamp) ? PosInf : Hi;
    // A value above the clamp still bounds from below by the clamp (and
    // dually), so [42, 42] becomes [16, +inf).
    if (E.Lo != NegInf && E.Lo > Clamp)
      E.Lo = Clamp;
    if (E.Hi != PosInf && E.Hi < -Clamp)
      E.Hi = -Clamp;
    return E;
  }

  static Elem constant(int64_t N) { return make(N, N); }
  static Elem naturals() { return make(0, PosInf); }

  static Elem join(const Elem &A, const Elem &B) {
    if (A.IsBot)
      return B;
    if (B.IsBot)
      return A;
    int64_t Lo = (A.Lo == NegInf || B.Lo == NegInf) ? NegInf
                                                    : std::min(A.Lo, B.Lo);
    int64_t Hi = (A.Hi == PosInf || B.Hi == PosInf) ? PosInf
                                                    : std::max(A.Hi, B.Hi);
    return make(Lo, Hi);
  }

  static bool leq(const Elem &A, const Elem &B) {
    if (A.IsBot)
      return true;
    if (B.IsBot)
      return false;
    bool LoOk = B.Lo == NegInf || (A.Lo != NegInf && A.Lo >= B.Lo);
    bool HiOk = B.Hi == PosInf || (A.Hi != PosInf && A.Hi <= B.Hi);
    return LoOk && HiOk;
  }

  static Elem add1(const Elem &E) {
    if (E.IsBot)
      return E;
    return make(E.Lo == NegInf ? NegInf : E.Lo + 1,
                E.Hi == PosInf ? PosInf : E.Hi + 1);
  }

  static Elem sub1(const Elem &E) {
    if (E.IsBot)
      return E;
    return make(E.Lo == NegInf ? NegInf : E.Lo - 1,
                E.Hi == PosInf ? PosInf : E.Hi - 1);
  }

  static ZeroTest isZero(const Elem &E) {
    if (E.IsBot)
      return ZeroTest::Bottom;
    bool Below = E.Lo != NegInf && E.Lo > 0;
    bool Above = E.Hi != PosInf && E.Hi < 0;
    if (Below || Above)
      return ZeroTest::NonZero;
    if (E.Lo == 0 && E.Hi == 0)
      return ZeroTest::Zero;
    return ZeroTest::Maybe;
  }

  static uint64_t hash(const Elem &E) {
    if (E.IsBot)
      return 0xb07;
    uint64_t H = mix64(static_cast<uint64_t>(E.Lo));
    hashCombine(H, static_cast<uint64_t>(E.Hi));
    return H;
  }

  static std::string str(const Elem &E) {
    if (E.IsBot)
      return "_|_";
    std::string Lo = E.Lo == NegInf ? "-inf" : std::to_string(E.Lo);
    std::string Hi = E.Hi == PosInf ? "+inf" : std::to_string(E.Hi);
    return "[" + Lo + "," + Hi + "]";
  }
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_NUMDOMAIN_H
