//===- syntax/Rename.cpp - Alpha-uniqueness renamer -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "syntax/Rename.h"

#include "syntax/Analysis.h"
#include "syntax/Builder.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

class Renamer {
public:
  Renamer(Context &Ctx, const Term *Root) : Ctx(Ctx), Build(Ctx) {
    // Free variables must keep their names and must never be captured.
    for (Symbol S : freeVars(Root))
      Used.insert(S);
  }

  const Term *term(const Term *T) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      return Build.val(value(cast<ValueTerm>(T)->value()), T->loc());
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      const Term *Fun = term(App->fun());
      const Term *Arg = term(App->arg());
      return Build.app(Fun, Arg, T->loc());
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      const Term *Bound = term(Let->bound());
      Symbol Fresh = pickName(Let->var());
      ScopedBinding Bind(*this, Let->var(), Fresh);
      const Term *Body = term(Let->body());
      return Build.let(Fresh, Bound, Body, T->loc());
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      const Term *Cond = term(If->cond());
      const Term *Then = term(If->thenBranch());
      const Term *Else = term(If->elseBranch());
      return Build.if0(Cond, Then, Else, T->loc());
    }
    case TermKind::TK_Loop:
      return Build.loop(T->loc());
    }
    assert(false && "unknown term kind");
    return nullptr;
  }

private:
  /// Re-binds \p Old to \p New for the dynamic extent of a scope, restoring
  /// the previous binding (if any) on exit.
  class ScopedBinding {
  public:
    ScopedBinding(Renamer &R, Symbol Old, Symbol New) : R(R), Old(Old) {
      auto It = R.Scope.find(Old);
      HadPrevious = It != R.Scope.end();
      if (HadPrevious)
        Previous = It->second;
      R.Scope[Old] = New;
    }
    ~ScopedBinding() {
      if (HadPrevious)
        R.Scope[Old] = Previous;
      else
        R.Scope.erase(Old);
    }

  private:
    Renamer &R;
    Symbol Old;
    Symbol Previous;
    bool HadPrevious;
  };

  Symbol pickName(Symbol Original) {
    if (Used.insert(Original).second)
      return Original;
    Symbol Fresh = Ctx.fresh(Ctx.spelling(Original));
    Used.insert(Fresh);
    return Fresh;
  }

  const Value *value(const Value *V) {
    switch (V->kind()) {
    case ValueKind::VK_Num:
      return Build.num(cast<NumValue>(V)->value(), V->loc());
    case ValueKind::VK_Prim:
      return cast<PrimValue>(V)->op() == PrimOp::Add1 ? Build.add1(V->loc())
                                                      : Build.sub1(V->loc());
    case ValueKind::VK_Var: {
      Symbol Name = cast<VarValue>(V)->name();
      auto It = Scope.find(Name);
      return Build.var(It == Scope.end() ? Name : It->second, V->loc());
    }
    case ValueKind::VK_Lam: {
      const auto *Lam = cast<LamValue>(V);
      Symbol Fresh = pickName(Lam->param());
      ScopedBinding Bind(*this, Lam->param(), Fresh);
      const Term *Body = term(Lam->body());
      return Build.lam(Fresh, Body, V->loc());
    }
    }
    assert(false && "unknown value kind");
    return nullptr;
  }

  Context &Ctx;
  Builder Build;
  std::unordered_set<Symbol> Used;
  std::unordered_map<Symbol, Symbol> Scope;
};

} // namespace

const Term *cpsflow::syntax::renameUnique(Context &Ctx, const Term *T) {
  return Renamer(Ctx, T).term(T);
}
