//===- cps/CpsAst.h - AST for cps(A) ----------------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the target language cps(A) of Definition 3.2:
///
/// \code
///   P ::= (k W)                          — return through continuation k
///       | (let (x W) P)
///       | (W W (lambda (x) P))           — call with explicit continuation
///       | (let (k (lambda (x) P))        — conditional with a *named*
///            (if0 W P P))                   join continuation
///       | (loopk (lambda (x) P))         — Section 6.2 extension
///   W ::= n | x | add1k | sub1k | (lambda (x k) P)
/// \endcode
///
/// where x ranges over Vars and k over KVars, with Vars and KVars disjoint
/// (the transformation draws KVars from a reserved `k%N` namespace). The
/// `(lambda (x) P)` forms in call and if0 positions are *continuation
/// lambdas* — a syntactic class of their own, evaluated to continuation
/// objects `(co x, P, rho)` by the Figure 3 interpreter, never to ordinary
/// closures.
///
/// `loopk` is our CPS image of the paper's `loop` construct: it hands every
/// natural number 0, 1, 2, ... to its continuation; its abstract semantics
/// mirrors the (undecidable) semantic-CPS loop rule of Section 6.2.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CPS_CPSAST_H
#define CPSFLOW_CPS_CPSAST_H

#include "syntax/Ast.h"

#include <cassert>
#include <cstdint>

namespace cpsflow {
namespace cps {

class CpsTerm;

//===----------------------------------------------------------------------===//
// Values W
//===----------------------------------------------------------------------===//

/// Discriminator for cps(A) values.
enum class CpsValueKind : uint8_t {
  WK_Num,  ///< numeral n
  WK_Var,  ///< variable x (never a KVar; returns use CpsRet directly)
  WK_Prim, ///< add1k or sub1k
  WK_Lam,  ///< (lambda (x k) P)
};

/// The two CPS primitives.
enum class CpsPrimOp : uint8_t {
  Add1k, ///< closes to the run-time tag `inck`
  Sub1k, ///< closes to the run-time tag `deck`
};

/// Base class of cps(A) values.
class CpsValue {
public:
  CpsValueKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  uint32_t id() const { return Id; }

protected:
  CpsValue(CpsValueKind Kind, SourceLoc Loc, uint32_t Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  CpsValueKind Kind;
  SourceLoc Loc;
  uint32_t Id;
};

/// A numeral.
class CpsNum : public CpsValue {
public:
  CpsNum(int64_t N, SourceLoc Loc, uint32_t Id)
      : CpsValue(CpsValueKind::WK_Num, Loc, Id), N(N) {}

  int64_t value() const { return N; }

  static bool classof(const CpsValue *V) {
    return V->kind() == CpsValueKind::WK_Num;
  }

private:
  int64_t N;
};

/// A variable reference (to an ordinary variable, not a KVar).
class CpsVar : public CpsValue {
public:
  CpsVar(Symbol Name, SourceLoc Loc, uint32_t Id)
      : CpsValue(CpsValueKind::WK_Var, Loc, Id), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const CpsValue *V) {
    return V->kind() == CpsValueKind::WK_Var;
  }

private:
  Symbol Name;
};

/// add1k or sub1k.
class CpsPrim : public CpsValue {
public:
  CpsPrim(CpsPrimOp Op, SourceLoc Loc, uint32_t Id)
      : CpsValue(CpsValueKind::WK_Prim, Loc, Id), Op(Op) {}

  CpsPrimOp op() const { return Op; }

  static bool classof(const CpsValue *V) {
    return V->kind() == CpsValueKind::WK_Prim;
  }

private:
  CpsPrimOp Op;
};

/// A CPS user procedure (lambda (x k) P): one value parameter and one
/// continuation parameter.
class CpsLam : public CpsValue {
public:
  CpsLam(Symbol Param, Symbol KParam, const CpsTerm *Body, SourceLoc Loc,
         uint32_t Id)
      : CpsValue(CpsValueKind::WK_Lam, Loc, Id), Param(Param), KParam(KParam),
        Body(Body) {}

  Symbol param() const { return Param; }
  Symbol kparam() const { return KParam; }
  const CpsTerm *body() const { return Body; }

  static bool classof(const CpsValue *V) {
    return V->kind() == CpsValueKind::WK_Lam;
  }

private:
  Symbol Param;
  Symbol KParam;
  const CpsTerm *Body;
};

//===----------------------------------------------------------------------===//
// Continuation lambdas (lambda (x) P)
//===----------------------------------------------------------------------===//

/// A continuation lambda `(lambda (x) P)`, the syntactic class appearing in
/// call position 3 and in the if0 join binding. It closes to a continuation
/// object `(co x, P, rho)` rather than an ordinary closure, so it gets its
/// own node type (not a CpsValue).
class ContLam {
public:
  ContLam(Symbol Param, const CpsTerm *Body, SourceLoc Loc, uint32_t Id)
      : Param(Param), Body(Body), Loc(Loc), Id(Id) {}

  Symbol param() const { return Param; }
  const CpsTerm *body() const { return Body; }
  SourceLoc loc() const { return Loc; }
  uint32_t id() const { return Id; }

private:
  Symbol Param;
  const CpsTerm *Body;
  SourceLoc Loc;
  uint32_t Id;
};

//===----------------------------------------------------------------------===//
// Terms P
//===----------------------------------------------------------------------===//

/// Discriminator for cps(A) terms.
enum class CpsTermKind : uint8_t {
  PK_Ret,    ///< (k W)
  PK_LetVal, ///< (let (x W) P)
  PK_Call,   ///< (W W (lambda (x) P))
  PK_If,     ///< (let (k (lambda (x) P)) (if0 W P P))
  PK_Loop,   ///< (loopk (lambda (x) P))
};

/// Base class of cps(A) terms.
class CpsTerm {
public:
  CpsTermKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  uint32_t id() const { return Id; }

protected:
  CpsTerm(CpsTermKind Kind, SourceLoc Loc, uint32_t Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  CpsTermKind Kind;
  SourceLoc Loc;
  uint32_t Id;
};

/// A return (k W): apply the continuation bound to k to the value of W.
class CpsRet : public CpsTerm {
public:
  CpsRet(Symbol KVar, const CpsValue *Arg, SourceLoc Loc, uint32_t Id)
      : CpsTerm(CpsTermKind::PK_Ret, Loc, Id), KVar(KVar), Arg(Arg) {}

  Symbol kvar() const { return KVar; }
  const CpsValue *arg() const { return Arg; }

  static bool classof(const CpsTerm *T) {
    return T->kind() == CpsTermKind::PK_Ret;
  }

private:
  Symbol KVar;
  const CpsValue *Arg;
};

/// (let (x W) P).
class CpsLetVal : public CpsTerm {
public:
  CpsLetVal(Symbol Var, const CpsValue *Bound, const CpsTerm *Body,
            SourceLoc Loc, uint32_t Id)
      : CpsTerm(CpsTermKind::PK_LetVal, Loc, Id), Var(Var), Bound(Bound),
        Body(Body) {}

  Symbol var() const { return Var; }
  const CpsValue *bound() const { return Bound; }
  const CpsTerm *body() const { return Body; }

  static bool classof(const CpsTerm *T) {
    return T->kind() == CpsTermKind::PK_LetVal;
  }

private:
  Symbol Var;
  const CpsValue *Bound;
  const CpsTerm *Body;
};

/// A call (W1 W2 (lambda (x) P)): apply W1 to W2 with the given
/// continuation.
class CpsCall : public CpsTerm {
public:
  CpsCall(const CpsValue *Fun, const CpsValue *Arg, const ContLam *Cont,
          SourceLoc Loc, uint32_t Id)
      : CpsTerm(CpsTermKind::PK_Call, Loc, Id), Fun(Fun), Arg(Arg),
        Cont(Cont) {}

  const CpsValue *fun() const { return Fun; }
  const CpsValue *arg() const { return Arg; }
  const ContLam *cont() const { return Cont; }

  static bool classof(const CpsTerm *T) {
    return T->kind() == CpsTermKind::PK_Call;
  }

private:
  const CpsValue *Fun;
  const CpsValue *Arg;
  const ContLam *Cont;
};

/// A conditional (let (k (lambda (x) P)) (if0 W P1 P2)): name the join
/// continuation k, then branch on W.
class CpsIf : public CpsTerm {
public:
  CpsIf(Symbol KVar, const ContLam *Join, const CpsValue *Cond,
        const CpsTerm *Then, const CpsTerm *Else, SourceLoc Loc, uint32_t Id)
      : CpsTerm(CpsTermKind::PK_If, Loc, Id), KVar(KVar), Join(Join),
        Cond(Cond), Then(Then), Else(Else) {}

  Symbol kvar() const { return KVar; }
  const ContLam *join() const { return Join; }
  const CpsValue *cond() const { return Cond; }
  const CpsTerm *thenBranch() const { return Then; }
  const CpsTerm *elseBranch() const { return Else; }

  static bool classof(const CpsTerm *T) {
    return T->kind() == CpsTermKind::PK_If;
  }

private:
  Symbol KVar;
  const ContLam *Join;
  const CpsValue *Cond;
  const CpsTerm *Then;
  const CpsTerm *Else;
};

/// The CPS image (loopk (lambda (x) P)) of the Section 6.2 loop construct.
class CpsLoop : public CpsTerm {
public:
  CpsLoop(const ContLam *Cont, SourceLoc Loc, uint32_t Id)
      : CpsTerm(CpsTermKind::PK_Loop, Loc, Id), Cont(Cont) {}

  const ContLam *cont() const { return Cont; }

  static bool classof(const CpsTerm *T) {
    return T->kind() == CpsTermKind::PK_Loop;
  }

private:
  const ContLam *Cont;
};

//===----------------------------------------------------------------------===//
// Checked casts
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa<> on null node");
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

} // namespace cps
} // namespace cpsflow

#endif // CPSFLOW_CPS_CPSAST_H
