
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syntax/Analysis.cpp" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Analysis.cpp.o" "gcc" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Analysis.cpp.o.d"
  "/root/repo/src/syntax/Parser.cpp" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Parser.cpp.o" "gcc" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Parser.cpp.o.d"
  "/root/repo/src/syntax/Printer.cpp" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Printer.cpp.o" "gcc" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Printer.cpp.o.d"
  "/root/repo/src/syntax/Rename.cpp" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Rename.cpp.o" "gcc" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Rename.cpp.o.d"
  "/root/repo/src/syntax/Sexpr.cpp" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Sexpr.cpp.o" "gcc" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Sexpr.cpp.o.d"
  "/root/repo/src/syntax/Sugar.cpp" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Sugar.cpp.o" "gcc" "src/syntax/CMakeFiles/cpsflow_syntax.dir/Sugar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
