//===- interp/Delta.h - The delta relation of Lemma 3.3 ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The function delta relating direct run-time values to their CPS
/// counterparts (Section 3.3):
///
/// \code
///   delta(n)              = n
///   delta(inc)            = inck
///   delta(dec)            = deck
///   delta((cl x, M, rho)) = (cl x k, F_k[M], rho')
/// \endcode
///
/// Lemma 3.3 says a direct run and the corresponding CPS run produce
/// delta-related answers, and delta-related stores up to the extra
/// continuation cells of the CPS store. deltaRelated checks the value
/// relation; storesDeltaRelated checks the store relation by comparing,
/// per source variable, the allocation histories of the two stores.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_INTERP_DELTA_H
#define CPSFLOW_INTERP_DELTA_H

#include "cps/Transform.h"
#include "interp/Runtime.h"

#include <string>

namespace cpsflow {
namespace interp {

/// True iff delta(\p Direct) == \p Cps, using \p Program's source-lambda to
/// CPS-lambda correspondence. Environments are not compared (they are
/// related pointwise through the stores; the store check covers them).
bool deltaRelated(const RtValue &Direct, const CpsRtValue &Cps,
                  const cps::CpsProgram &Program);

/// Checks the Lemma 3.3 store relation: for every source variable x, the
/// sequence of values allocated at x-cells in \p DirectStore is delta-
/// related, element by element, to the sequence allocated at x-cells in
/// \p CpsStore. Cells for KVars (continuations) in \p CpsStore are the
/// lemma's "additional entries" and are ignored.
///
/// On mismatch \p WhyNot (if non-null) receives a description.
bool storesDeltaRelated(const Context &Ctx, const Store &DirectStore,
                        const CpsStore &CpsStore,
                        const cps::CpsProgram &Program,
                        std::string *WhyNot = nullptr);

} // namespace interp
} // namespace cpsflow

#endif // CPSFLOW_INTERP_DELTA_H
