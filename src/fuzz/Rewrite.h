//===- fuzz/Rewrite.h - Structural term editing utilities -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The editing substrate shared by the fuzz Mutator and Shrinker: collect
/// a term's nodes in deterministic pre-order, then rebuild the term with
/// selected nodes replaced. Replacements may point back into the original
/// tree (both live in the same Context arena), so "drop this let" is just
/// mapping the LetTerm to its own body.
///
/// Edited terms are *not* guaranteed to stay in A-normal form or keep
/// unique binders — callers re-establish both with anf::normalizeProgram
/// before using the result, per the hygiene assumption of Section 2.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_FUZZ_REWRITE_H
#define CPSFLOW_FUZZ_REWRITE_H

#include "syntax/Ast.h"

#include <map>
#include <vector>

namespace cpsflow {
namespace fuzz {

/// Every Term node of \p T in pre-order (parents before children, bound
/// before body, then/else in source order).
std::vector<const syntax::Term *> collectTerms(const syntax::Term *T);

/// Every Value node of \p T in the same traversal order (lambda bodies
/// included).
std::vector<const syntax::Value *> collectValues(const syntax::Term *T);

/// Every LetTerm of \p T in pre-order.
std::vector<const syntax::LetTerm *> collectLets(const syntax::Term *T);

/// Number of let bindings in \p T — the size measure the shrinker
/// minimizes (and the acceptance bound for reproducers).
size_t letCount(const syntax::Term *T);

/// One batch of edits: original node -> replacement. A replaced node is
/// emitted as its replacement verbatim (no recursion into either the
/// original or the replacement), so edits to nested nodes should go in
/// separate rewrite passes.
struct EditMap {
  std::map<const syntax::Term *, const syntax::Term *> Terms;
  std::map<const syntax::Value *, const syntax::Value *> Values;

  bool empty() const { return Terms.empty() && Values.empty(); }
};

/// Rebuilds \p T in \p Ctx applying \p Edits. Untouched subtrees are
/// shared with the original (same arena). \p Ctx must own \p T.
const syntax::Term *rewriteTerm(Context &Ctx, const syntax::Term *T,
                                const EditMap &Edits);

} // namespace fuzz
} // namespace cpsflow

#endif // CPSFLOW_FUZZ_REWRITE_H
