file(REMOVE_RECURSE
  "libcpsflow_syntax.a"
)
