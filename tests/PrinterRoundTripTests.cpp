//===- tests/PrinterRoundTripTests.cpp - print/parse round trips -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test behind every corpus pipeline in the repo (the batch
/// driver, the fuzz campaign, the O5 determinism oracle all ferry
/// programs through the printer): for generator and enumerator output,
/// parse(print(P)) is structurally identical to P, for both the compact
/// and the indented printer. Extends the two hand-written round-trip
/// cases in SyntaxTests.cpp to the whole generated distribution.
///
//===----------------------------------------------------------------------===//

#include "gen/Enumerate.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::syntax;

namespace {

/// Asserts both printers of \p T reparse to a structurally identical
/// term.
void expectRoundTrip(Context &Ctx, const Term *T) {
  std::string Flat = print(Ctx, T);
  Result<const Term *> R1 = parseTerm(Ctx, Flat);
  ASSERT_TRUE(R1.hasValue()) << Flat << "\n " << R1.error().str();
  EXPECT_TRUE(structurallyEqual(T, *R1)) << Flat;

  std::string Pretty = printIndented(Ctx, T);
  Result<const Term *> R2 = parseTerm(Ctx, Pretty);
  ASSERT_TRUE(R2.hasValue()) << Pretty << "\n " << R2.error().str();
  EXPECT_TRUE(structurallyEqual(T, *R2)) << Pretty;
}

TEST(PrinterRoundTrip, GeneratedAnfPrograms) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Context Ctx;
    gen::GenOptions G;
    G.Seed = Seed;
    G.ChainLength = 4 + Seed % 8;
    G.MaxDepth = 1 + Seed % 3;
    G.AllowLoop = Seed % 4 == 0;
    G.WellTyped = Seed % 2 == 0;
    gen::ProgramGenerator Gen(Ctx, G);
    for (int I = 0; I < 4; ++I)
      expectRoundTrip(Ctx, Gen.generate());
  }
}

TEST(PrinterRoundTrip, GeneratedFullLanguagePrograms) {
  // generateFull exercises the non-ANF shapes (nested applications,
  // let-bound lets, operand conditionals) the normalizer consumes.
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Context Ctx;
    gen::GenOptions G;
    G.Seed = Seed;
    G.MaxDepth = 1 + Seed % 4;
    gen::ProgramGenerator Gen(Ctx, G);
    for (int I = 0; I < 4; ++I)
      expectRoundTrip(Ctx, Gen.generateFull());
  }
}

TEST(PrinterRoundTrip, EnumeratedPrograms) {
  Context Ctx;
  gen::EnumOptions E;
  E.Lets = 2;
  size_t N = gen::enumeratePrograms(
      Ctx, E, [&](const Term *T) { expectRoundTrip(Ctx, T); });
  EXPECT_GT(N, 0u);
}

} // namespace
