//===- syntax/Parser.h - Parser for language A ------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the surface syntax of language A into the AST:
///
/// \code
///   M ::= V | (M M) | (let (x M) M) | (if0 M M M) | (loop)
///   V ::= n | x | add1 | sub1 | (lambda (x) M)
/// \endcode
///
/// `lambda` may also be spelled `λ`. The keywords `let`, `if0`, `lambda`,
/// `loop`, `add1`, and `sub1` are reserved and cannot be variable names.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_PARSER_H
#define CPSFLOW_SYNTAX_PARSER_H

#include "support/Result.h"
#include "syntax/Ast.h"
#include "syntax/Sexpr.h"

#include <string_view>

namespace cpsflow {
namespace syntax {

/// Parses \p Source as a single language-A term allocated in \p Ctx.
Result<const Term *> parseTerm(Context &Ctx, std::string_view Source);

/// Converts an already-read s-expression to a term.
Result<const Term *> termFromSexpr(Context &Ctx, const Sexpr &E);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_PARSER_H
