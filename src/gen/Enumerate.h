//===- gen/Enumerate.h - Bounded-exhaustive program enumeration -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded-exhaustive enumeration of small A-normal-form programs: every
/// let chain of a given length whose bindings are drawn from a compact
/// universe (numerals, variable copies, primitive applications, variable
/// applications, two lambda shapes, two-sided conditionals over in-scope
/// values). Complements the random generator: random testing samples the
/// long tail, exhaustive testing guarantees no small counterexample to
/// the interpreter-agreement lemmas or analyzer soundness slips through.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_GEN_ENUMERATE_H
#define CPSFLOW_GEN_ENUMERATE_H

#include "syntax/Ast.h"

#include <functional>

namespace cpsflow {
namespace gen {

/// Options for the enumeration universe.
struct EnumOptions {
  /// Number of let bindings per program.
  uint32_t Lets = 2;
  /// Include lambda-valued bindings (identity and add1-wrapper shapes).
  bool WithLambdas = true;
  /// Include two-sided conditionals over in-scope values.
  bool WithConditionals = true;
  /// One free variable z is always in scope.
  bool WithFreeVar = true;
};

/// Invokes \p Visit on every program in the universe. Programs satisfy
/// anf::isAnf and have unique binders. \returns the number of programs
/// visited.
size_t enumeratePrograms(Context &Ctx, const EnumOptions &Opts,
                         const std::function<void(const syntax::Term *)> &Visit);

} // namespace gen
} // namespace cpsflow

#endif // CPSFLOW_GEN_ENUMERATE_H
