file(REMOVE_RECURSE
  "CMakeFiles/constant_folder.dir/constant_folder.cpp.o"
  "CMakeFiles/constant_folder.dir/constant_folder.cpp.o.d"
  "constant_folder"
  "constant_folder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constant_folder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
