# Empty compiler generated dependencies file for duplication_table.
# This may be replaced when dependencies are built.
