//===- fuzz/Shrinker.cpp - Counterexample minimization ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrinker.h"

#include "anf/Anf.h"
#include "fuzz/Rewrite.h"
#include "syntax/Builder.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"
#include "syntax/Sugar.h"

#include <vector>

namespace cpsflow {
namespace fuzz {

using namespace syntax;

namespace {

/// Re-checks only the failing oracle. A candidate that fails to parse
/// or transform counts as not-failing (we never shrink into junk).
bool stillFails(const std::string &Candidate, OracleId Failing,
                const OracleOptions &Opts) {
  OracleOptions One = Opts;
  One.Mask = maskOf(Failing);
  Result<OracleOutcome> Out = checkSource(Candidate, One);
  if (!Out)
    return false;
  for (const OracleViolation &V : Out->Violations)
    if (V.Id == Failing)
      return true;
  return false;
}

/// All single-edit shrink candidates of \p T, smaller-first-ish:
/// structural deletions (drop let, prune if0 arm), then copy inlining,
/// then numeral shrinks.
std::vector<std::string> candidates(Context &Ctx, const Term *T) {
  std::vector<std::string> Out;
  Builder B(Ctx);
  auto Emit = [&](const EditMap &E) {
    const Term *Edited = rewriteTerm(Ctx, T, E);
    Out.push_back(print(Ctx, anf::normalizeProgram(Ctx, Edited)));
  };

  // Drop each let binding.
  for (const LetTerm *L : collectLets(T)) {
    EditMap E;
    E.Terms[L] = L->body();
    Emit(E);
  }

  // Prune each bound conditional to one of its arms.
  for (const Term *N : collectTerms(T)) {
    if (const auto *I = dyn_cast<If0Term>(N)) {
      EditMap E1;
      E1.Terms[I] = I->thenBranch();
      Emit(E1);
      EditMap E2;
      E2.Terms[I] = I->elseBranch();
      Emit(E2);
    }
  }

  // Inline trivial copies: a let binding a bare numeral or variable is
  // substituted into its body and dropped.
  for (const LetTerm *L : collectLets(T)) {
    const auto *VT = dyn_cast<ValueTerm>(L->bound());
    if (!VT)
      continue;
    const Value *V = VT->value();
    if (!isa<NumValue>(V) && !isa<VarValue>(V))
      continue;
    EditMap E;
    for (const Value *Use : collectValues(L->body()))
      if (const auto *Var = dyn_cast<VarValue>(Use))
        if (Var->name() == L->var())
          E.Values[Use] = V;
    E.Terms[L] = rewriteTerm(Ctx, L->body(), E);
    EditMap Drop;
    Drop.Terms[L] = E.Terms[L];
    Emit(Drop);
  }

  // Shrink numerals toward zero (halve, or step to 0 when small).
  for (const Value *V : collectValues(T)) {
    const auto *N = dyn_cast<NumValue>(V);
    if (!N || N->value() == 0)
      continue;
    int64_t Smaller = N->value() / 2;
    EditMap E;
    E.Values[N] = B.num(Smaller);
    Emit(E);
  }

  return Out;
}

} // namespace

ShrinkResult shrink(const std::string &Source, OracleId Failing,
                    const OracleOptions &Opts, const ShrinkOptions &SOpts) {
  ShrinkResult R;
  R.Program = Source;

  {
    // Count the input's lets (and bail out on unparseable input).
    Context Ctx;
    Result<const Term *> Raw = parseSugaredProgram(Ctx, Source);
    if (!Raw)
      return R;
    R.LetsBefore = R.LetsAfter =
        letCount(anf::normalizeProgram(Ctx, *Raw));
  }

  // Confirm the violation before spending the budget on it.
  ++R.Steps;
  if (!stillFails(Source, Failing, Opts))
    return R;

  bool Progress = true;
  while (Progress && R.Steps < SOpts.MaxSteps) {
    Progress = false;
    Context Ctx;
    Result<const Term *> Raw = parseSugaredProgram(Ctx, R.Program);
    if (!Raw)
      break;
    const Term *T = anf::normalizeProgram(Ctx, *Raw);
    for (const std::string &Candidate : candidates(Ctx, T)) {
      if (Candidate == R.Program)
        continue;
      if (++R.Steps >= SOpts.MaxSteps)
        break;
      if (stillFails(Candidate, Failing, Opts)) {
        R.Program = Candidate;
        Progress = true;
        break; // restart candidate enumeration from the smaller program
      }
    }
  }

  Context Ctx;
  Result<const Term *> Raw = parseSugaredProgram(Ctx, R.Program);
  if (Raw)
    R.LetsAfter = letCount(anf::normalizeProgram(Ctx, *Raw));
  return R;
}

} // namespace fuzz
} // namespace cpsflow
