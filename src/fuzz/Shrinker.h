//===- fuzz/Shrinker.h - Counterexample minimization ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging (ddmin-style) minimization of fuzz findings: given a
/// program that violates an oracle, greedily apply shrinking edits —
/// drop let bindings, inline trivial copy bindings, prune conditional
/// arms, shrink numerals toward zero — re-checking the *failing oracle
/// only* after each candidate, and keep any candidate that still fails.
/// Iterates to a fixpoint under a step budget. Deterministic: candidates
/// are enumerated in pre-order, so a (program, oracle, options) triple
/// always shrinks to the same reproducer.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_FUZZ_SHRINKER_H
#define CPSFLOW_FUZZ_SHRINKER_H

#include "fuzz/Oracles.h"

#include <cstdint>
#include <string>

namespace cpsflow {
namespace fuzz {

struct ShrinkOptions {
  /// Cap on oracle re-evaluations (each candidate costs one).
  uint64_t MaxSteps = 300;
};

struct ShrinkResult {
  /// The minimized program (printer output; parses back identically).
  std::string Program;
  /// Oracle evaluations spent.
  uint64_t Steps = 0;
  /// Let-binding counts before and after — the minimization measure.
  size_t LetsBefore = 0;
  size_t LetsAfter = 0;
};

/// Minimizes \p Source, which violates \p Failing under \p Opts. If the
/// violation is flaky (the initial re-check passes), returns \p Source
/// unshrunken.
ShrinkResult shrink(const std::string &Source, OracleId Failing,
                    const OracleOptions &Opts,
                    const ShrinkOptions &SOpts = ShrinkOptions());

} // namespace fuzz
} // namespace cpsflow

#endif // CPSFLOW_FUZZ_SHRINKER_H
