//===- gen/Workloads.cpp - Structured workload families ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Workloads.h"

#include "syntax/Builder.h"

#include <string>
#include <vector>

using namespace cpsflow;
using namespace cpsflow::syntax;
using analysis::AbsBindingSpec;
using analysis::Witness;

Witness cpsflow::gen::conditionalChain(Context &Ctx, uint32_t N) {
  Builder B(Ctx);
  Witness W;
  W.Name = "conditional-chain-" + std::to_string(N);

  // acc_0 = 0; acc_{i+1} = if0 z_i then add1(acc_i) else sub1(acc_i);
  // result acc_N. Each branch's constant differs, so the per-path stores
  // stay distinct and the CPS analyzers explore all 2^N paths.
  std::vector<Symbol> Accs, Zs;
  for (uint32_t I = 0; I <= N; ++I)
    Accs.push_back(Ctx.fresh("acc"));
  for (uint32_t I = 0; I < N; ++I)
    Zs.push_back(Ctx.fresh("z"));

  const Term *Body = B.varTerm(Accs[N]);
  for (uint32_t I = N; I-- > 0;) {
    Symbol T = Ctx.fresh("t");
    Symbol S = Ctx.fresh("s");
    const Term *Then =
        B.let(T, B.appVV(B.add1(), B.var(Accs[I])), B.varTerm(T));
    const Term *Else =
        B.let(S, B.appVV(B.sub1(), B.var(Accs[I])), B.varTerm(S));
    Body = B.let(Accs[I + 1], B.if0(B.varTerm(Zs[I]), Then, Else), Body);
  }
  W.Anf = B.let(Accs[0], B.numTerm(0), Body);

  for (Symbol Z : Zs) {
    AbsBindingSpec ZB;
    ZB.Var = Z;
    ZB.NumTop = true;
    W.Bindings.push_back(ZB);
  }
  W.InterestingVars = Accs;
  W.Probe = Accs[N];
  analysis::finalizeWitness(Ctx, W);
  return W;
}

Witness cpsflow::gen::convergingChain(Context &Ctx, uint32_t N) {
  Builder B(Ctx);
  Witness W;
  W.Name = "converging-chain-" + std::to_string(N);

  // acc_{i+1} = if0 z_i then i+1 else i+1: both branches produce the
  // same value with no differing store effects, so after each conditional
  // the per-path stores coincide again and the continuation goals repeat
  // exactly.
  std::vector<Symbol> Accs, Zs;
  for (uint32_t I = 0; I <= N; ++I)
    Accs.push_back(Ctx.fresh("acc"));
  for (uint32_t I = 0; I < N; ++I)
    Zs.push_back(Ctx.fresh("z"));

  const Term *Body = B.varTerm(Accs[N]);
  for (uint32_t I = N; I-- > 0;) {
    Body = B.let(Accs[I + 1],
                 B.if0(B.varTerm(Zs[I]), B.numTerm(I + 1), B.numTerm(I + 1)),
                 Body);
  }
  W.Anf = B.let(Accs[0], B.numTerm(0), Body);

  for (Symbol Z : Zs) {
    AbsBindingSpec ZB;
    ZB.Var = Z;
    ZB.NumTop = true;
    W.Bindings.push_back(ZB);
  }
  W.InterestingVars = {Accs[N]};
  W.Probe = Accs[N];
  analysis::finalizeWitness(Ctx, W);
  return W;
}

Witness cpsflow::gen::callMergeChain(Context &Ctx, uint32_t N) {
  Builder B(Ctx);
  Witness W;
  W.Name = "call-merge-chain-" + std::to_string(N);

  // The Theorem 5.2b shape, repeated: a_i = f_i 3 with f_i |-> two
  // constant closures; b_i = if0 a_i then 5 else (if0 (sub1 a_i) 5 6).
  // Every CPS path keeps b_i = 5; the direct analysis merges a_i to T and
  // loses every b_i.
  std::vector<Symbol> Bs;
  const Term *Body = nullptr;
  std::vector<const Term *> Pending;

  for (uint32_t I = 0; I < N; ++I)
    Bs.push_back(Ctx.fresh("b"));

  Body = B.varTerm(Bs[N - 1]);
  for (uint32_t I = N; I-- > 0;) {
    Symbol F = Ctx.fresh("f");
    Symbol A = Ctx.fresh("a");
    Symbol U = Ctx.fresh("u");
    Symbol V = Ctx.fresh("v");
    Symbol D0 = Ctx.fresh("d");
    Symbol D1 = Ctx.fresh("d");

    const LamValue *K0 = B.lam(D0, B.numTerm(0));
    const LamValue *K1 = B.lam(D1, B.numTerm(1));
    AbsBindingSpec FB;
    FB.Var = F;
    FB.Lams.push_back(K0);
    FB.Lams.push_back(K1);
    W.Bindings.push_back(FB);

    const Term *Inner =
        B.let(U, B.appVV(B.sub1(), B.var(A)),
              B.let(V, B.if0(B.varTerm(U), B.numTerm(5), B.numTerm(6)),
                    B.varTerm(V)));
    Body = B.let(
        A, B.appVV(B.var(F), B.num(3)),
        B.let(Bs[I], B.if0(B.varTerm(A), B.numTerm(5), Inner), Body));
  }
  W.Anf = Body;
  W.InterestingVars = Bs;
  W.Probe = Bs[N - 1];
  analysis::finalizeWitness(Ctx, W);
  return W;
}

Witness cpsflow::gen::closureTower(Context &Ctx, uint32_t N) {
  Builder B(Ctx);
  Witness W;
  W.Name = "closure-tower-" + std::to_string(N);

  // x_0 = 0; f_i = (lambda (p_i) (add1 p_i)); x_{i+1} = f_i x_i.
  // Distinct lambdas keep every abstract constant exact in all three
  // analyzers; the family is linear everywhere.
  std::vector<Symbol> Xs;
  for (uint32_t I = 0; I <= N; ++I)
    Xs.push_back(Ctx.fresh("x"));

  const Term *Body = B.varTerm(Xs[N]);
  for (uint32_t I = N; I-- > 0;) {
    Symbol F = Ctx.fresh("f");
    Symbol P = Ctx.fresh("p");
    Symbol Q = Ctx.fresh("q");
    const Term *LamBody =
        B.let(Q, B.appVV(B.add1(), B.var(P)), B.varTerm(Q));
    Body = B.let(F, B.val(B.lam(P, LamBody)),
                 B.let(Xs[I + 1], B.appVV(B.var(F), B.var(Xs[I])), Body));
  }
  W.Anf = B.let(Xs[0], B.numTerm(0), Body);
  W.InterestingVars = {Xs[N]};
  W.Probe = Xs[N];
  analysis::finalizeWitness(Ctx, W);
  return W;
}

Witness cpsflow::gen::loopProbe(Context &Ctx, uint32_t K) {
  Builder B(Ctx);
  Witness W;
  W.Name = "loop-probe-" + std::to_string(K);

  // (let (x (loop))
  //   (let (u_1 (sub1 x)) ... (let (u_K (sub1 u_{K-1}))
  //     (let (r (if0 u_K 7 9)) r))))
  // Only the iterate x = K reaches the 7 branch.
  Symbol X = Ctx.fresh("x");
  Symbol R = Ctx.fresh("r");

  std::vector<Symbol> Us;
  for (uint32_t I = 0; I < K; ++I)
    Us.push_back(Ctx.fresh("u"));

  Symbol Test = K == 0 ? X : Us[K - 1];
  const Term *Body =
      B.let(R, B.if0(B.varTerm(Test), B.numTerm(7), B.numTerm(9)),
            B.varTerm(R));
  for (uint32_t I = K; I-- > 0;) {
    Symbol Prev = I == 0 ? X : Us[I - 1];
    Body = B.let(Us[I], B.appVV(B.sub1(), B.var(Prev)), Body);
  }
  W.Anf = B.let(X, B.loop(), Body);
  W.InterestingVars = {X, R};
  W.Probe = R;
  analysis::finalizeWitness(Ctx, W);
  return W;
}

Witness cpsflow::gen::omega(Context &Ctx) {
  Builder B(Ctx);
  Witness W;
  W.Name = "omega";

  // (let (w (lambda (x) (let (r (x x)) r))) (let (d (w w)) d)).
  Symbol Wv = Ctx.fresh("w");
  Symbol X = Ctx.fresh("x");
  Symbol R = Ctx.fresh("r");
  Symbol Dv = Ctx.fresh("d");

  const Term *LamBody =
      B.let(R, B.appVV(B.var(X), B.var(X)), B.varTerm(R));
  W.Anf = B.let(Wv, B.val(B.lam(X, LamBody)),
                B.let(Dv, B.appVV(B.var(Wv), B.var(Wv)), B.varTerm(Dv)));
  W.InterestingVars = {X, Dv};
  W.Probe = Dv;
  analysis::finalizeWitness(Ctx, W);
  return W;
}

Witness cpsflow::gen::counterLoop(Context &Ctx, uint32_t N) {
  Builder B(Ctx);
  Witness W;
  W.Name = "counter-loop-" + std::to_string(N);

  // Recursion by self-application:
  //   g = (lambda (s) (lambda (n) (if0 n 0 ((s s) (sub1 n)))))
  //   out = ((g g) N)
  // in ANF. Concretely terminates after N calls; abstractly exercises the
  // Section 4.4 cut on a recursive but terminating program.
  Symbol G = Ctx.fresh("g");
  Symbol S = Ctx.fresh("s");
  Symbol Nv = Ctx.fresh("n");
  Symbol M = Ctx.fresh("m");
  Symbol F = Ctx.fresh("f");
  Symbol R2 = Ctx.fresh("r");
  Symbol Res = Ctx.fresh("res");
  Symbol F0 = Ctx.fresh("f0");
  Symbol Out = Ctx.fresh("out");

  const Term *ElseBranch =
      B.let(M, B.appVV(B.sub1(), B.var(Nv)),
            B.let(F, B.appVV(B.var(S), B.var(S)),
                  B.let(R2, B.appVV(B.var(F), B.var(M)), B.varTerm(R2))));
  const Term *InnerBody =
      B.let(Res, B.if0(B.varTerm(Nv), B.numTerm(0), ElseBranch),
            B.varTerm(Res));
  const LamValue *Inner = B.lam(Nv, InnerBody);
  const LamValue *Gv = B.lam(S, B.val(Inner));

  W.Anf = B.let(G, B.val(Gv),
                B.let(F0, B.appVV(B.var(G), B.var(G)),
                      B.let(Out, B.appVV(B.var(F0), B.num(N)),
                            B.varTerm(Out))));
  W.InterestingVars = {Nv, Out};
  W.Probe = Out;
  analysis::finalizeWitness(Ctx, W);
  return W;
}
