//===- support/SourceLoc.h - Source positions -------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column positions for diagnostics from the s-expression reader.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_SOURCELOC_H
#define CPSFLOW_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace cpsflow {

/// A 1-based line/column position. Line 0 denotes "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }

  /// Renders as "line:column" or "<unknown>".
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_SOURCELOC_H
