; Both branches produce constants; the merge point must join them.
; `input` is free and bound to top by the batch driver, so neither
; branch is pruned.
(let (a (if0 input 1 2))
  (let (b (if0 input 2 1))
    (if0 a b a)))
