//===- gen/Digest.cpp - Stable structural term digests ----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gen/Digest.h"

#include "support/Hashing.h"

namespace cpsflow {
namespace gen {

namespace {

uint64_t stringHash(std::string_view S) {
  // FNV-1a, then mix64: simple, endian-free, stable everywhere.
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return mix64(H);
}

// Distinct per-kind salts so (let (x 1) x) and (if0 1 x x) with the same
// child digests cannot collide structurally.
enum : uint64_t {
  SaltNum = 0xA1,
  SaltVar = 0xA2,
  SaltPrimAdd = 0xA3,
  SaltPrimSub = 0xA4,
  SaltLam = 0xA5,
  SaltValueTerm = 0xB1,
  SaltApp = 0xB2,
  SaltLet = 0xB3,
  SaltIf0 = 0xB4,
  SaltLoop = 0xB5,
};

uint64_t digestValue(const Context &Ctx, const syntax::Value *V);

uint64_t digestTerm(const Context &Ctx, const syntax::Term *T) {
  using namespace syntax;
  uint64_t H = 0;
  switch (T->kind()) {
  case TermKind::TK_Value:
    H = SaltValueTerm;
    hashCombine(H, digestValue(Ctx, cast<ValueTerm>(T)->value()));
    break;
  case TermKind::TK_App: {
    const auto *A = cast<AppTerm>(T);
    H = SaltApp;
    hashCombine(H, digestTerm(Ctx, A->fun()));
    hashCombine(H, digestTerm(Ctx, A->arg()));
    break;
  }
  case TermKind::TK_Let: {
    const auto *L = cast<LetTerm>(T);
    H = SaltLet;
    hashCombine(H, stringHash(Ctx.spelling(L->var())));
    hashCombine(H, digestTerm(Ctx, L->bound()));
    hashCombine(H, digestTerm(Ctx, L->body()));
    break;
  }
  case TermKind::TK_If0: {
    const auto *I = cast<If0Term>(T);
    H = SaltIf0;
    hashCombine(H, digestTerm(Ctx, I->cond()));
    hashCombine(H, digestTerm(Ctx, I->thenBranch()));
    hashCombine(H, digestTerm(Ctx, I->elseBranch()));
    break;
  }
  case TermKind::TK_Loop:
    H = SaltLoop;
    break;
  }
  return mix64(H);
}

uint64_t digestValue(const Context &Ctx, const syntax::Value *V) {
  using namespace syntax;
  uint64_t H = 0;
  switch (V->kind()) {
  case ValueKind::VK_Num:
    H = SaltNum;
    hashCombine(H, static_cast<uint64_t>(cast<NumValue>(V)->value()));
    break;
  case ValueKind::VK_Var:
    H = SaltVar;
    hashCombine(H, stringHash(Ctx.spelling(cast<VarValue>(V)->name())));
    break;
  case ValueKind::VK_Prim:
    H = cast<PrimValue>(V)->op() == PrimOp::Add1 ? SaltPrimAdd : SaltPrimSub;
    break;
  case ValueKind::VK_Lam: {
    const auto *L = cast<LamValue>(V);
    H = SaltLam;
    hashCombine(H, stringHash(Ctx.spelling(L->param())));
    hashCombine(H, digestTerm(Ctx, L->body()));
    break;
  }
  }
  return mix64(H);
}

} // namespace

uint64_t termDigest(const Context &Ctx, const syntax::Term *T) {
  return digestTerm(Ctx, T);
}

uint64_t valueDigest(const Context &Ctx, const syntax::Value *V) {
  return digestValue(Ctx, V);
}

uint64_t textDigest(std::string_view Text) { return stringHash(Text); }

} // namespace gen
} // namespace cpsflow
