# Empty dependencies file for cpsflow_cli.
# This may be replaced when dependencies are built.
