file(REMOVE_RECURSE
  "CMakeFiles/theorem52.dir/theorem52.cpp.o"
  "CMakeFiles/theorem52.dir/theorem52.cpp.o.d"
  "theorem52"
  "theorem52.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem52.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
