file(REMOVE_RECURSE
  "CMakeFiles/duplication_cost.dir/duplication_cost.cpp.o"
  "CMakeFiles/duplication_cost.dir/duplication_cost.cpp.o.d"
  "duplication_cost"
  "duplication_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplication_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
