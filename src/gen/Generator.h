//===- gen/Generator.h - Random ANF program generator -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic random generator of A-normal-form programs, used by the
/// property tests (soundness of the analyzers against the concrete
/// interpreters, the interpreter-agreement lemmas) and by the E8
/// incomparability census.
///
/// Generated programs are closed up to a configurable set of free
/// variables z0..zN-1 (bound by the test harness, concretely to integers
/// and abstractly to the numeric top), have unique binders by
/// construction, and satisfy anf::isAnf. They are *not* guaranteed to be
/// well-typed or terminating: stuck and diverging programs exercise the
/// partiality of the Figure 1-3 interpreters and the soundness of the
/// analyzers on them.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_GEN_GENERATOR_H
#define CPSFLOW_GEN_GENERATOR_H

#include "support/Rng.h"
#include "syntax/Ast.h"

#include <vector>

namespace cpsflow {
namespace gen {

/// Tuning knobs for the generator.
struct GenOptions {
  uint64_t Seed = 1;
  /// Free variables z0..z{NumFreeVars-1} assumed bound by the harness.
  uint32_t NumFreeVars = 2;
  /// Bindings per let chain (before the final result value).
  uint32_t ChainLength = 8;
  /// Maximum nesting of lambdas and conditionals.
  uint32_t MaxDepth = 3;
  /// Permit the Section 6.2 `loop` construct (off by default: most tests
  /// compare against concrete runs, which `loop` always diverges).
  bool AllowLoop = false;
  /// Numerals are drawn from [0, NumeralRange].
  int64_t NumeralRange = 3;
  /// When true, operators are drawn only from variables known to hold
  /// procedures (plus primitives and literal lambdas), so most programs
  /// complete instead of getting stuck on `(number number)`. Useful for
  /// corpora that should exercise the precision comparisons rather than
  /// dead-path handling.
  bool WellTyped = false;
};

/// Generates one program per call; successive calls continue the random
/// stream, so a single generator yields a reproducible corpus.
class ProgramGenerator {
public:
  ProgramGenerator(Context &Ctx, GenOptions Opts);

  /// \returns an ANF term with unique binders.
  const syntax::Term *generate();

  /// \returns a general (usually non-ANF) language-A term with unique
  /// binders: nested applications, let-bound lets, conditionals in
  /// arbitrary positions. Exercises the A-normalizer.
  const syntax::Term *generateFull();

  /// The free variables generated programs may reference.
  const std::vector<Symbol> &freeVars() const { return FreeVars; }

private:
  const syntax::Term *chain(uint32_t Length, uint32_t Depth,
                            std::vector<Symbol> &Scope);
  const syntax::Term *fullTerm(uint32_t Depth, std::vector<Symbol> &Scope);
  const syntax::Value *operand(const std::vector<Symbol> &Scope);
  const syntax::Value *operatorValue(uint32_t Depth,
                                     std::vector<Symbol> &Scope);

  Context &Ctx;
  GenOptions Opts;
  Rng Random;
  std::vector<Symbol> FreeVars;
  /// Variables currently in scope whose binding was a literal lambda.
  std::vector<Symbol> FunScope;
};

} // namespace gen
} // namespace cpsflow

#endif // CPSFLOW_GEN_GENERATOR_H
