# Empty compiler generated dependencies file for cpsflow_clients.
# This may be replaced when dependencies are built.
