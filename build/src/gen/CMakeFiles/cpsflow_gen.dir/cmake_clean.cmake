file(REMOVE_RECURSE
  "CMakeFiles/cpsflow_gen.dir/Enumerate.cpp.o"
  "CMakeFiles/cpsflow_gen.dir/Enumerate.cpp.o.d"
  "CMakeFiles/cpsflow_gen.dir/Generator.cpp.o"
  "CMakeFiles/cpsflow_gen.dir/Generator.cpp.o.d"
  "CMakeFiles/cpsflow_gen.dir/Workloads.cpp.o"
  "CMakeFiles/cpsflow_gen.dir/Workloads.cpp.o.d"
  "libcpsflow_gen.a"
  "libcpsflow_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpsflow_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
