//===- tests/ReductionTests.cpp - A-reduction step system -------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-step A-reduction engine: individual rules fire where
/// expected, reduction reaches a fixed point that satisfies the restricted
/// grammar, and that fixed point is alpha-equivalent to the one-shot
/// normalizer's output — the two implementations check each other.
///
//===----------------------------------------------------------------------===//

#include "anf/Reductions.h"

#include "TestUtil.h"
#include "anf/Anf.h"
#include "gen/Generator.h"
#include "syntax/Analysis.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace cpsflow;
using namespace cpsflow::anf;
using cpsflow::test::mustParse;

namespace {

TEST(AlphaEquivalence, BasicCases) {
  Context Ctx;
  auto Eq = [&](const char *A, const char *B) {
    return syntax::alphaEquivalent(mustParse(Ctx, A), mustParse(Ctx, B));
  };
  EXPECT_TRUE(Eq("(lambda (x) x)", "(lambda (y) y)"));
  EXPECT_TRUE(Eq("(let (a 1) a)", "(let (b 1) b)"));
  EXPECT_TRUE(Eq("(lambda (x) (lambda (y) x))",
                 "(lambda (y) (lambda (x) y))"));
  // Free variables must match exactly.
  EXPECT_FALSE(Eq("z", "w"));
  EXPECT_TRUE(Eq("z", "z"));
  // Different binding structure is not alpha-equivalent.
  EXPECT_FALSE(Eq("(lambda (x) (lambda (y) x))",
                  "(lambda (x) (lambda (y) y))"));
  // Bound-versus-free mismatch.
  EXPECT_FALSE(Eq("(lambda (x) x)", "(lambda (y) x)"));
  EXPECT_FALSE(Eq("(let (a 1) a)", "(let (b 1) 1)"));
}

TEST(AlphaEquivalence, ShadowingHandled) {
  Context Ctx;
  // (lambda (x) (let (x x) x)) ~ (lambda (a) (let (b a) b)).
  EXPECT_TRUE(syntax::alphaEquivalent(
      mustParse(Ctx, "(lambda (x) (let (x x) x))"),
      mustParse(Ctx, "(lambda (a) (let (b a) b))")));
  EXPECT_FALSE(syntax::alphaEquivalent(
      mustParse(Ctx, "(lambda (x) (let (x x) x))"),
      mustParse(Ctx, "(lambda (a) (let (b a) a))")));
}

TEST(AReductions, NamesATailApplication) {
  Context Ctx;
  auto S = stepA(Ctx, mustParse(Ctx, "(f 1)"));
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rule, ARule::A3_NameApp);
  EXPECT_TRUE(anf::isAnf(S->Next).hasValue());
}

TEST(AReductions, LiftsALetOutOfABinding) {
  Context Ctx;
  auto S = stepA(Ctx, mustParse(Ctx, "(let (x (let (y 1) y)) x)"));
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rule, ARule::A1_LiftLet);
  EXPECT_EQ(syntax::print(Ctx, S->Next), "(let (y 1) (let (x y) x))");
}

TEST(AReductions, LiftsALetOutOfAnOperand) {
  Context Ctx;
  // The paper's reordering example: (add1 (let (x 5) 0)).
  const syntax::Term *T = mustParse(Ctx, "(add1 (let (x 5) 0))");
  // Step 1 names the tail application; step 2 hoists the inner let.
  auto S1 = stepA(Ctx, T);
  ASSERT_TRUE(S1.has_value());
  auto S2 = stepA(Ctx, S1->Next);
  ASSERT_TRUE(S2.has_value());
  EXPECT_EQ(S2->Rule, ARule::A1_LiftLet);
  // The let now scopes over the application.
  const auto *Outer = syntax::cast<syntax::LetTerm>(S2->Next);
  EXPECT_EQ(Ctx.spelling(Outer->var()), "x");
}

TEST(AReductions, NamesConditionsAndConditionals) {
  Context Ctx;
  auto S = stepA(Ctx, mustParse(Ctx, "(let (r (if0 (add1 0) 1 2)) r)"));
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rule, ARule::A3_NameApp); // the condition gets named first
  auto S2 = stepA(Ctx, mustParse(Ctx, "(if0 z 1 2)"));
  ASSERT_TRUE(S2.has_value());
  EXPECT_EQ(S2->Rule, ARule::A2_NameIf0);
}

TEST(AReductions, NamesLoops) {
  Context Ctx;
  auto S = stepA(Ctx, mustParse(Ctx, "(loop)"));
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rule, ARule::A4_NameLoop);
  EXPECT_TRUE(anf::isAnf(S->Next).hasValue());
}

TEST(AReductions, NormalFormsAreIrreducible) {
  Context Ctx;
  for (const char *Text : {
           "42",
           "(let (x (add1 1)) x)",
           "(let (f (lambda (y) (let (r (add1 y)) r))) (let (a (f 1)) a))",
           "(let (x (if0 z 1 2)) x)",
       }) {
    const syntax::Term *T = mustParse(Ctx, Text);
    EXPECT_FALSE(stepA(Ctx, T).has_value()) << Text;
  }
}

TEST(AReductions, IrreducibleIffAnf) {
  // stepA finds a redex exactly when the grammar check fails.
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = 99;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 30; ++I) {
    const syntax::Term *Full = Gen.generateFull();
    EXPECT_EQ(anf::isAnfQuick(Full), !stepA(Ctx, Full).has_value())
        << syntax::print(Ctx, Full);
  }
}

TEST(AReductions, RuleNamesRender) {
  EXPECT_STREQ(str(ARule::A1_LiftLet), "A1");
  EXPECT_STREQ(str(ARule::A2_NameIf0), "A2");
  EXPECT_STREQ(str(ARule::A3_NameApp), "A3");
  EXPECT_STREQ(str(ARule::A4_NameLoop), "A4");
}

class StepwiseAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StepwiseAgreement, FixpointMatchesOneShotNormalizer) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 25; ++I) {
    const syntax::Term *Full = Gen.generateFull();
    Result<const syntax::Term *> Stepped = normalizeBySteps(Ctx, Full);
    ASSERT_TRUE(Stepped.hasValue()) << syntax::print(Ctx, Full);
    ASSERT_TRUE(anf::isAnf(*Stepped).hasValue())
        << syntax::print(Ctx, *Stepped);

    const syntax::Term *OneShot = anf::normalize(Ctx, Full);
    EXPECT_TRUE(syntax::alphaEquivalent(*Stepped, OneShot))
        << "input:    " << syntax::print(Ctx, Full)
        << "\nstepped:  " << syntax::print(Ctx, *Stepped)
        << "\none-shot: " << syntax::print(Ctx, OneShot);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepwiseAgreement,
                         ::testing::Values(311, 313, 317, 331));

} // namespace
