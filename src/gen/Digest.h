//===- gen/Digest.h - Stable structural term digests ------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 64-bit structural digest of language-A terms that is stable across
/// Contexts, processes, and platforms: it hashes node kinds, numerals,
/// and variable *spellings* (never node ids, pointers, or symbol ids).
/// Two structurallyEqual terms always digest equal, whichever Context
/// each lives in.
///
/// Uses: the generator-stability golden test (fixed GenOptions seeds must
/// keep producing the same programs, or recorded fuzz reproducer seeds
/// rot), fuzz finding deduplication, and deterministic reproducer file
/// names.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_GEN_DIGEST_H
#define CPSFLOW_GEN_DIGEST_H

#include "syntax/Ast.h"

#include <cstdint>
#include <string_view>

namespace cpsflow {
namespace gen {

/// Structural digest of \p T. Depends only on the tree shape, numerals,
/// primitive tags, and identifier spellings.
uint64_t termDigest(const Context &Ctx, const syntax::Term *T);

/// Digest of \p V (same domain as termDigest).
uint64_t valueDigest(const Context &Ctx, const syntax::Value *V);

/// Digest of raw program text (for artifacts that exist only as source,
/// e.g. fuzz reproducer files before parsing).
uint64_t textDigest(std::string_view Text);

} // namespace gen
} // namespace cpsflow

#endif // CPSFLOW_GEN_DIGEST_H
