//===- analysis/Witnesses.cpp - Theorem witness programs --------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Witnesses.h"

#include "anf/Anf.h"
#include "syntax/Builder.h"

#include <cassert>

using namespace cpsflow;
using namespace cpsflow::analysis;
using namespace cpsflow::syntax;

void cpsflow::analysis::finalizeWitness(Context &Ctx, Witness &W) {
  assert(anf::isAnfQuick(W.Anf) && "witness must be built in ANF");
  Result<cps::CpsProgram> P = cps::cpsTransform(Ctx, W.Anf);
  assert(P.hasValue() && "witness transform failed");
  W.Cps = P.take();
  for (const AbsBindingSpec &B : W.Bindings)
    for (const LamValue *Lam : B.Lams)
      cps::cpsTransformExtra(Ctx, W.Cps, Lam);
}

namespace {

void finalize(Context &Ctx, Witness &W) { finalizeWitness(Ctx, W); }

} // namespace

Witness cpsflow::analysis::theorem51(Context &Ctx) {
  Builder B(Ctx);
  Witness W;
  W.Name = "theorem-5.1";

  Symbol F = Ctx.intern("f");
  Symbol A1 = Ctx.intern("a1");
  Symbol A2 = Ctx.intern("a2");
  Symbol X = Ctx.intern("x");

  // (let (a1 (f 1)) (let (a2 (f 2)) a2))
  W.Anf = B.let(A1, B.appVV(B.var(F), B.num(1)),
                B.let(A2, B.appVV(B.var(F), B.num(2)), B.varTerm(A2)));

  // f |-> (bot, {(cle x, x)}): the identity closure.
  const LamValue *Id = B.lam(X, B.varTerm(X));
  AbsBindingSpec FB;
  FB.Var = F;
  FB.Lams.push_back(Id);
  W.Bindings.push_back(FB);

  W.InterestingVars = {A1, A2, X};
  finalize(Ctx, W);
  return W;
}

Witness cpsflow::analysis::theorem52a(Context &Ctx) {
  Builder B(Ctx);
  Witness W;
  W.Name = "theorem-5.2a";

  Symbol Z = Ctx.intern("z");
  Symbol A1 = Ctx.intern("a1");
  Symbol A2 = Ctx.intern("a2");

  // (let (a1 (if0 z 0 1))
  //   (let (a2 (if0 a1 (+ a1 3) (+ a1 2))) a2))
  // with (+ a1 n) spelled as an add1 chain ending in a named result.
  Symbol T3 = Ctx.intern("t3");
  Symbol S2 = Ctx.intern("s2");
  const Term *Plus3 = B.plusConst(T3, B.var(A1), 3, B.varTerm(T3));
  const Term *Plus2 = B.plusConst(S2, B.var(A1), 2, B.varTerm(S2));

  W.Anf = B.let(
      A1, B.if0(B.varTerm(Z), B.numTerm(0), B.numTerm(1)),
      B.let(A2, B.if0(B.varTerm(A1), Plus3, Plus2), B.varTerm(A2)));

  AbsBindingSpec ZB;
  ZB.Var = Z;
  ZB.NumTop = true;
  W.Bindings.push_back(ZB);

  W.InterestingVars = {A1, A2};
  finalize(Ctx, W);
  return W;
}

Witness cpsflow::analysis::theorem52b(Context &Ctx) {
  Builder B(Ctx);
  Witness W;
  W.Name = "theorem-5.2b";

  Symbol F = Ctx.intern("f");
  Symbol A1 = Ctx.intern("a1");
  Symbol A2 = Ctx.intern("a2");
  Symbol U = Ctx.intern("u");
  Symbol V = Ctx.intern("v");
  Symbol D0 = Ctx.intern("d0");
  Symbol D1 = Ctx.intern("d1");

  // (let (a1 (f 3))
  //   (let (a2 (if0 a1 5 (if0 (sub1 a1) 5 6))) a2))
  // in ANF, naming the intermediate results u and v.
  const Term *Inner =
      B.let(U, B.appVV(B.sub1(), B.var(A1)),
            B.let(V, B.if0(B.varTerm(U), B.numTerm(5), B.numTerm(6)),
                  B.varTerm(V)));
  W.Anf = B.let(
      A1, B.appVV(B.var(F), B.num(3)),
      B.let(A2, B.if0(B.varTerm(A1), B.numTerm(5), Inner), B.varTerm(A2)));

  // f |-> (bot, {(cle d0, 0), (cle d1, 1)}).
  const LamValue *K0 = B.lam(D0, B.numTerm(0));
  const LamValue *K1 = B.lam(D1, B.numTerm(1));
  AbsBindingSpec FB;
  FB.Var = F;
  FB.Lams.push_back(K0);
  FB.Lams.push_back(K1);
  W.Bindings.push_back(FB);

  W.InterestingVars = {A1, A2, U, V};
  finalize(Ctx, W);
  return W;
}

Witness cpsflow::analysis::packageProgram(Context &Ctx, std::string Name,
                                          const syntax::Term *Anf) {
  Witness W;
  W.Name = std::move(Name);
  W.Anf = Anf;
  for (Symbol S : syntax::boundVars(Anf))
    W.InterestingVars.push_back(S);
  finalize(Ctx, W);
  return W;
}
