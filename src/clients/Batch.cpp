//===- clients/Batch.cpp - Parallel corpus driver -------------------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Batch.h"

#include "analysis/DirectAnalyzer.h"
#include "analysis/DupAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Compare.h"
#include "anf/Anf.h"
#include "cps/Transform.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "syntax/Analysis.h"
#include "syntax/Parser.h"
#include "syntax/Sugar.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cpsflow {
namespace clients {

namespace {

double elapsedMs(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

/// Runs one analyzer leg, timing it and rendering the answer value.
template <typename Analyzer>
BatchAnalyzerRecord runLeg(const Context &Ctx, Analyzer &&A) {
  auto Start = std::chrono::steady_clock::now();
  auto R = A.run();
  BatchAnalyzerRecord Rec;
  Rec.WallMs = elapsedMs(Start);
  Rec.Answer = R.Answer.Value.str(Ctx);
  Rec.Stats = R.Stats;
  return Rec;
}

/// Analyzes one program at a fixed numeric domain. Owns the whole
/// pipeline — Context, parse, ANF, CPS, analyzers — so concurrent calls
/// share nothing.
template <typename D>
BatchProgramResult analyzeOne(const std::string &Name,
                              const std::string &Source,
                              const BatchOptions &Opts) {
  BatchProgramResult Out;
  Out.Name = Name;

  Context Ctx;
  Result<const syntax::Term *> Parsed =
      syntax::parseSugaredProgram(Ctx, Source);
  if (!Parsed) {
    Out.Error = "parse error: " + Parsed.error().str();
    return Out;
  }
  const syntax::Term *Anf = anf::normalizeProgram(Ctx, *Parsed);
  Out.Nodes = syntax::countNodes(Anf);

  Result<cps::CpsProgram> Cps = cps::cpsTransform(Ctx, Anf);
  if (!Cps) {
    Out.Error = "cps error: " + Cps.error().str();
    return Out;
  }

  // Corpus programs may leave inputs free; bind them to the numeric top
  // so every analyzer sees the same closed problem.
  std::vector<analysis::DirectBinding<D>> Init;
  for (Symbol X : syntax::freeVars(Anf))
    Init.push_back({X, domain::AbsVal<D>::number(D::top())});
  std::vector<analysis::CpsBinding<D>> CInit;
  for (const analysis::DirectBinding<D> &B : Init)
    CInit.push_back({B.Var, analysis::deltaE<D>(B.Value, *Cps)});

  analysis::AnalyzerOptions AOpts;
  AOpts.MaxGoals = Opts.MaxGoals;

  Out.Direct = runLeg(Ctx, analysis::DirectAnalyzer<D>(Ctx, Anf, Init,
                                                       AOpts));
  Out.Semantic = runLeg(
      Ctx, analysis::SemanticCpsAnalyzer<D>(Ctx, Anf, Init, AOpts));
  Out.Syntactic = runLeg(
      Ctx, analysis::SyntacticCpsAnalyzer<D>(Ctx, *Cps, CInit, AOpts));
  Out.Dup = runLeg(Ctx, analysis::DupAnalyzer<D>(Ctx, Anf, Init,
                                                 Opts.DupBudget, AOpts));
  Out.Ok = true;
  return Out;
}

BatchProgramResult dispatchOne(const std::string &Name,
                               const std::string &Source,
                               const BatchOptions &Opts) {
  if (Opts.Domain == "constant")
    return analyzeOne<domain::ConstantDomain>(Name, Source, Opts);
  if (Opts.Domain == "unit")
    return analyzeOne<domain::UnitDomain>(Name, Source, Opts);
  if (Opts.Domain == "sign")
    return analyzeOne<domain::SignDomain>(Name, Source, Opts);
  if (Opts.Domain == "parity")
    return analyzeOne<domain::ParityDomain>(Name, Source, Opts);
  if (Opts.Domain == "interval")
    return analyzeOne<domain::IntervalDomain>(Name, Source, Opts);
  BatchProgramResult Out;
  Out.Name = Name;
  Out.Error = "unknown domain '" + Opts.Domain + "'";
  return Out;
}

void writeAnalyzerRecord(JsonWriter &W, const char *Key,
                         const BatchAnalyzerRecord &Rec,
                         const BatchOptions &Opts) {
  W.key(Key).beginObject();
  W.key("answer").value(Rec.Answer);
  W.key("goals").value(Rec.Stats.Goals);
  W.key("cacheHits").value(Rec.Stats.CacheHits);
  W.key("cuts").value(Rec.Stats.Cuts);
  W.key("maxDepth").value(Rec.Stats.MaxDepth);
  W.key("deadPaths").value(Rec.Stats.DeadPaths);
  W.key("prunedBranches").value(Rec.Stats.PrunedBranches);
  W.key("budgetExhausted").value(Rec.Stats.BudgetExhausted);
  W.key("loopBounded").value(Rec.Stats.LoopBounded);
  if (Opts.IncludeTiming)
    W.key("wallMs").value(Rec.WallMs);
  W.endObject();
}

/// Per-analyzer aggregate across the corpus.
struct LegTotals {
  uint64_t Goals = 0, CacheHits = 0, Cuts = 0;
  double WallMs = 0;

  void add(const BatchAnalyzerRecord &Rec) {
    Goals += Rec.Stats.Goals;
    CacheHits += Rec.Stats.CacheHits;
    Cuts += Rec.Stats.Cuts;
    WallMs += Rec.WallMs;
  }

  void write(JsonWriter &W, const char *Key,
             const BatchOptions &Opts) const {
    W.key(Key).beginObject();
    W.key("goals").value(Goals);
    W.key("cacheHits").value(CacheHits);
    W.key("cuts").value(Cuts);
    if (Opts.IncludeTiming)
      W.key("wallMs").value(WallMs);
    W.endObject();
  }
};

} // namespace

std::vector<std::string> collectCorpus(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (!E.is_regular_file())
      continue;
    if (E.path().extension() == ".scm")
      Files.push_back(E.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

BatchResult runBatch(
    const std::vector<std::pair<std::string, std::string>> &NamedSources,
    const BatchOptions &Opts) {
  auto Start = std::chrono::steady_clock::now();
  BatchResult R;
  R.Programs.resize(NamedSources.size());

  if (Opts.Threads <= 1) {
    for (size_t I = 0; I < NamedSources.size(); ++I)
      R.Programs[I] = dispatchOne(NamedSources[I].first,
                                  NamedSources[I].second, Opts);
  } else {
    // One job per program; each writes only its own pre-sized slot.
    ThreadPool Pool(Opts.Threads);
    for (size_t I = 0; I < NamedSources.size(); ++I)
      Pool.submit([I, &NamedSources, &Opts, &R] {
        R.Programs[I] = dispatchOne(NamedSources[I].first,
                                    NamedSources[I].second, Opts);
      });
    Pool.wait();
  }

  R.WallMs = elapsedMs(Start);
  return R;
}

BatchResult runBatchFiles(const std::vector<std::string> &Files,
                          const BatchOptions &Opts) {
  std::vector<std::pair<std::string, std::string>> Sources;
  Sources.reserve(Files.size());
  for (const std::string &File : Files) {
    std::ifstream In(File);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Name = std::filesystem::path(File).filename().string();
    if (!In) {
      // Surface the read failure as a per-program error so one bad path
      // doesn't abort the whole corpus.
      Sources.emplace_back(Name, "");
    } else {
      Sources.emplace_back(Name, Buf.str());
    }
  }
  return runBatch(Sources, Opts);
}

std::string batchJson(const BatchResult &R, const BatchOptions &Opts) {
  JsonWriter W;
  W.beginObject();
  W.key("schemaVersion").value(1);
  W.key("domain").value(Opts.Domain);
  W.key("dupBudget").value(static_cast<uint64_t>(Opts.DupBudget));
  if (Opts.IncludeTiming) {
    W.key("threads").value(static_cast<uint64_t>(Opts.Threads));
    W.key("wallMs").value(R.WallMs);
  }

  LegTotals Direct, Semantic, Syntactic, Dup;
  uint64_t Failures = 0;

  W.key("programs").beginArray();
  for (const BatchProgramResult &P : R.Programs) {
    W.beginObject();
    W.key("name").value(P.Name);
    W.key("ok").value(P.Ok);
    if (!P.Ok) {
      ++Failures;
      W.key("error").value(P.Error);
      W.endObject();
      continue;
    }
    W.key("nodes").value(P.Nodes);
    writeAnalyzerRecord(W, "direct", P.Direct, Opts);
    writeAnalyzerRecord(W, "semantic", P.Semantic, Opts);
    writeAnalyzerRecord(W, "syntactic", P.Syntactic, Opts);
    writeAnalyzerRecord(W, "dup", P.Dup, Opts);
    W.endObject();
    Direct.add(P.Direct);
    Semantic.add(P.Semantic);
    Syntactic.add(P.Syntactic);
    Dup.add(P.Dup);
  }
  W.endArray();

  W.key("totals").beginObject();
  W.key("programs").value(static_cast<uint64_t>(R.Programs.size()));
  W.key("failures").value(Failures);
  Direct.write(W, "direct", Opts);
  Semantic.write(W, "semantic", Opts);
  Syntactic.write(W, "syntactic", Opts);
  Dup.write(W, "dup", Opts);
  W.endObject();

  W.endObject();
  return W.str();
}

} // namespace clients
} // namespace cpsflow
