# Empty compiler generated dependencies file for dup_budget.
# This may be replaced when dependencies are built.
