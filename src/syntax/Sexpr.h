//===- syntax/Sexpr.h - S-expression reader ---------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small s-expression reader shared by the parsers for A and cps(A).
///
/// Grammar:
/// \code
///   sexpr ::= NUMBER | SYMBOL | '(' sexpr* ')'
/// \endcode
/// Comments run from ';' to end of line. Symbols are maximal runs of
/// characters other than whitespace, parentheses, and ';'.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_SEXPR_H
#define CPSFLOW_SYNTAX_SEXPR_H

#include "support/Result.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cpsflow {
namespace syntax {

/// A parsed s-expression node.
struct Sexpr {
  enum class Kind : uint8_t { Number, Symbol, List };

  Kind NodeKind;
  SourceLoc Loc;
  int64_t Number = 0;          ///< valid when NodeKind == Number
  std::string Text;            ///< valid when NodeKind == Symbol
  std::vector<Sexpr> Elements; ///< valid when NodeKind == List

  bool isNumber() const { return NodeKind == Kind::Number; }
  bool isSymbol() const { return NodeKind == Kind::Symbol; }
  bool isList() const { return NodeKind == Kind::List; }

  /// True iff this is the symbol \p Name.
  bool isSymbol(std::string_view Name) const {
    return isSymbol() && Text == Name;
  }

  /// Number of list elements; 0 for atoms.
  size_t size() const { return Elements.size(); }

  const Sexpr &operator[](size_t I) const { return Elements[I]; }

  /// Renders back to text (canonical spacing).
  std::string str() const;
};

/// Parses a single s-expression from \p Source.
///
/// Trailing input (other than whitespace and comments) is an error, so a
/// file holds exactly one program.
Result<Sexpr> parseSexpr(std::string_view Source);

/// Parses a sequence of s-expressions (used by test corpora).
Result<std::vector<Sexpr>> parseSexprList(std::string_view Source);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_SEXPR_H
