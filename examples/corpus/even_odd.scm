; Parity by two-step descent, driven by a free input bound to top:
; the analyzer must cut the unbounded recursion.
(define (even n)
  (if0 n 1 (if0 (sub1 n) 0 (even (sub1 (sub1 n))))))
(even input)
