//===- anf/Anf.h - A-normalization ------------------------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A-normalization (Section 2 of the paper).
///
/// The analyses assume every intermediate result is named. The restricted
/// subset the paper works with — A-normal form — is:
///
/// \code
///   M ::= V | (let (x V) M) | (let (x (V V)) M)
///       | (let (x (if0 V M M)) M) | (let (x (loop)) M)
///   V ::= n | x | add1 | sub1 | (lambda (x) M)
/// \endcode
///
/// normalize implements the A-reductions: it names intermediate results
/// (first phase) and re-orders expressions into evaluation order (second
/// phase), e.g. `(add1 (let (x V) 0))` becomes `(let (x V) (let (t (add1
/// 0)) t))`. The transformation preserves the direct semantics; tests check
/// this against the Figure 1 interpreter on random programs.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANF_ANF_H
#define CPSFLOW_ANF_ANF_H

#include "support/Result.h"
#include "syntax/Ast.h"

namespace cpsflow {
namespace anf {

/// A-normalizes \p T. Fresh names for intermediate results are drawn from
/// \p Ctx. The input need not have unique binders, but the output does not
/// re-establish uniqueness for user binders — run syntax::renameUnique
/// first (or use normalizeProgram) when feeding analyzers.
const syntax::Term *normalize(Context &Ctx, const syntax::Term *T);

/// Convenience pipeline: alpha-rename to unique binders, then normalize.
/// The result satisfies both syntax::checkUniqueBinders and isAnf.
const syntax::Term *normalizeProgram(Context &Ctx, const syntax::Term *T);

/// Checks that \p T is in the restricted subset above. \returns an error
/// locating the first violation otherwise.
Result<bool> isAnf(const syntax::Term *T);

/// True iff \p T is already in A-normal form (discarding the diagnostic).
bool isAnfQuick(const syntax::Term *T);

} // namespace anf
} // namespace cpsflow

#endif // CPSFLOW_ANF_ANF_H
