//===- domain/Refs.h - Abstract closures and continuations ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract-closure and abstract-continuation references of
/// Section 4.1. Dropping environments makes an abstract closure a pair of
/// text and binder — identified here by the (unique, arena-stable) AST node
/// of its lambda — plus the primitive tags:
///
///  * CloRef       — direct/semantic analyses: inc, dec, or (cle x, M)
///  * CpsCloRef    — syntactic-CPS analysis: inck, deck, or (cle x k, P)
///  * KontRef      — syntactic-CPS analysis: stop or (coe x, P)
///
/// All three order deterministically by (tag, node id), so sets print
/// stably across runs.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_DOMAIN_REFS_H
#define CPSFLOW_DOMAIN_REFS_H

#include "cps/CpsAst.h"
#include "support/Hashing.h"
#include "syntax/Ast.h"

#include <string>

namespace cpsflow {
namespace domain {

/// An abstract closure of the direct and semantic-CPS analyses.
struct CloRef {
  enum class K : uint8_t { Inc, Dec, Lam };
  K Tag = K::Inc;
  const syntax::LamValue *Lam = nullptr;

  static CloRef inc() { return CloRef{K::Inc, nullptr}; }
  static CloRef dec() { return CloRef{K::Dec, nullptr}; }
  static CloRef lam(const syntax::LamValue *L) { return CloRef{K::Lam, L}; }

  friend bool operator==(const CloRef &A, const CloRef &B) {
    return A.Tag == B.Tag && A.Lam == B.Lam;
  }
  friend bool operator<(const CloRef &A, const CloRef &B) {
    if (A.Tag != B.Tag)
      return A.Tag < B.Tag;
    if (A.Tag != K::Lam)
      return false;
    return A.Lam->id() < B.Lam->id();
  }

  uint64_t hashValue() const {
    return mix64(static_cast<uint64_t>(Tag) * 0x10001 +
                 (Lam ? Lam->id() : 0));
  }

  std::string str(const Context &Ctx) const {
    switch (Tag) {
    case K::Inc:
      return "inc";
    case K::Dec:
      return "dec";
    case K::Lam:
      return "(cle " + std::string(Ctx.spelling(Lam->param())) + " #" +
             std::to_string(Lam->id()) + ")";
    }
    return "?";
  }
};

/// An abstract closure of the syntactic-CPS analysis.
struct CpsCloRef {
  enum class K : uint8_t { Inck, Deck, Lam };
  K Tag = K::Inck;
  const cps::CpsLam *Lam = nullptr;

  static CpsCloRef inck() { return CpsCloRef{K::Inck, nullptr}; }
  static CpsCloRef deck() { return CpsCloRef{K::Deck, nullptr}; }
  static CpsCloRef lam(const cps::CpsLam *L) { return CpsCloRef{K::Lam, L}; }

  friend bool operator==(const CpsCloRef &A, const CpsCloRef &B) {
    return A.Tag == B.Tag && A.Lam == B.Lam;
  }
  friend bool operator<(const CpsCloRef &A, const CpsCloRef &B) {
    if (A.Tag != B.Tag)
      return A.Tag < B.Tag;
    if (A.Tag != K::Lam)
      return false;
    return A.Lam->id() < B.Lam->id();
  }

  uint64_t hashValue() const {
    return mix64(static_cast<uint64_t>(Tag) * 0x20003 +
                 (Lam ? Lam->id() : 0));
  }

  std::string str(const Context &Ctx) const {
    switch (Tag) {
    case K::Inck:
      return "inck";
    case K::Deck:
      return "deck";
    case K::Lam:
      return "(cle " + std::string(Ctx.spelling(Lam->param())) + " " +
             std::string(Ctx.spelling(Lam->kparam())) + " #" +
             std::to_string(Lam->id()) + ")";
    }
    return "?";
  }
};

/// An abstract continuation of the syntactic-CPS analysis.
struct KontRef {
  enum class K : uint8_t { Stop, Cont };
  K Tag = K::Stop;
  const cps::ContLam *Cont = nullptr;

  static KontRef stop() { return KontRef{K::Stop, nullptr}; }
  static KontRef cont(const cps::ContLam *C) { return KontRef{K::Cont, C}; }

  friend bool operator==(const KontRef &A, const KontRef &B) {
    return A.Tag == B.Tag && A.Cont == B.Cont;
  }
  friend bool operator<(const KontRef &A, const KontRef &B) {
    if (A.Tag != B.Tag)
      return A.Tag < B.Tag;
    if (A.Tag != K::Cont)
      return false;
    return A.Cont->id() < B.Cont->id();
  }

  uint64_t hashValue() const {
    return mix64(static_cast<uint64_t>(Tag) * 0x40005 +
                 (Cont ? Cont->id() : 0));
  }

  std::string str(const Context &Ctx) const {
    switch (Tag) {
    case K::Stop:
      return "stop";
    case K::Cont:
      return "(coe " + std::string(Ctx.spelling(Cont->param())) + " #" +
             std::to_string(Cont->id()) + ")";
    }
    return "?";
  }
};

} // namespace domain
} // namespace cpsflow

#endif // CPSFLOW_DOMAIN_REFS_H
