//===- analysis/PushdownAnalyzer.cpp - Analyzer name registry -------------===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The analyzer-name registry shared by the CLI and the serve protocol:
// one canonicalization function so aliases resolve identically everywhere
// (and so MemoStore buckets never split across an alias and its canonical
// spelling), plus the rendered valid-choices lists used by rejection
// messages.
//
//===----------------------------------------------------------------------===//

#include "analysis/PushdownAnalyzer.h"

namespace cpsflow {
namespace analysis {

std::optional<std::string> canonicalAnalyzerName(std::string_view Name) {
  if (Name == "direct")
    return std::string("direct");
  if (Name == "semantic" || Name == "scps")
    return std::string("semantic");
  if (Name == "syntactic" || Name == "syncps")
    return std::string("syntactic");
  if (Name == "dup")
    return std::string("dup");
  if (Name == "pushdown" || Name == "pd" || Name == "cfa2")
    return std::string("pushdown");
  return std::nullopt;
}

const char *knownAnalyzerNames() {
  return "direct|semantic|syntactic|dup|pushdown";
}

const char *knownAnalyzerAliases() {
  return "scps=semantic, syncps=syntactic, pd=cfa2=pushdown";
}

} // namespace analysis
} // namespace cpsflow
