//===- clients/Reports.cpp - Human-readable analysis reports ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Reports.h"

#include "syntax/Printer.h"

using namespace cpsflow;
using namespace cpsflow::clients;

std::string cpsflow::clients::describeCfg(const Context &Ctx,
                                          const analysis::DirectCfg &Cfg) {
  std::ostringstream O;
  for (const auto &[Site, Callees] : Cfg.Callees) {
    O << "  call #" << Site->id() << " "
      << syntax::print(Ctx, static_cast<const syntax::Term *>(Site))
      << " -> {";
    bool First = true;
    for (const domain::CloRef &C : Callees) {
      if (!First)
        O << ", ";
      O << C.str(Ctx);
      First = false;
    }
    O << "}\n";
  }
  for (const auto &[If, BI] : Cfg.Branches) {
    O << "  if0 #" << If->id() << " feasible:";
    if (BI.ThenFeasible)
      O << " then";
    if (BI.ElseFeasible)
      O << " else";
    O << "\n";
  }
  return O.str();
}

std::string cpsflow::clients::describeCfg(const Context &Ctx,
                                          const analysis::CpsCfg &Cfg) {
  std::ostringstream O;
  for (const auto &[Site, Callees] : Cfg.Callees) {
    O << "  call #" << Site->id() << " -> {";
    bool First = true;
    for (const domain::CpsCloRef &C : Callees) {
      if (!First)
        O << ", ";
      O << C.str(Ctx);
      First = false;
    }
    O << "}\n";
  }
  for (const auto &[If, BI] : Cfg.Branches) {
    O << "  if0 #" << If->id() << " feasible:";
    if (BI.ThenFeasible)
      O << " then";
    if (BI.ElseFeasible)
      O << " else";
    O << "\n";
  }
  for (const auto &[Ret, Konts] : Cfg.Returns) {
    O << "  return (" << Ctx.spelling(Ret->kvar()) << " _) #" << Ret->id()
      << " -> {";
    bool First = true;
    for (const domain::KontRef &K : Konts) {
      if (!First)
        O << ", ";
      O << K.str(Ctx);
      First = false;
    }
    O << "}";
    if (Konts.size() > 1)
      O << "   <-- FALSE RETURN (distinct returns confused)";
    O << "\n";
  }
  return O.str();
}

std::string
cpsflow::clients::describeStats(const analysis::AnalyzerStats &S) {
  std::ostringstream O;
  O << "goals=" << S.Goals << " cache-hits=" << S.CacheHits
    << " cuts=" << S.Cuts << " max-depth=" << S.MaxDepth;
  if (S.BudgetExhausted) {
    // Keep the historical tag for plain goal exhaustion; name the wall
    // for the governor's other trips.
    if (S.Degraded == support::DegradeReason::None ||
        S.Degraded == support::DegradeReason::Goals)
      O << " [budget exhausted]";
    else
      O << " [degraded: " << support::str(S.Degraded) << "]";
  }
  if (S.LoopBounded)
    O << " [loop join truncated]";
  return O.str();
}
