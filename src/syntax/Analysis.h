//===- syntax/Analysis.h - Syntactic analyses over A terms ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Purely syntactic helpers over language-A terms: free variables, bound
/// variables, binder-uniqueness and closedness checks, structural equality,
/// node counting, and the collection of all lambda nodes (the abstract
/// closure universe CL_T of Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_ANALYSIS_H
#define CPSFLOW_SYNTAX_ANALYSIS_H

#include "support/Result.h"
#include "syntax/Ast.h"

#include <set>
#include <vector>

namespace cpsflow {
namespace syntax {

/// \returns the set of free variables of \p T, ordered by symbol id.
std::set<Symbol> freeVars(const Term *T);

/// \returns the set of variables bound by let or lambda anywhere in \p T.
std::set<Symbol> boundVars(const Term *T);

/// Checks the paper's Section 2 hygiene assumption: every binder in \p T
/// binds a distinct variable, and no binder shadows a free variable.
/// \returns an error naming the first offending binder otherwise.
Result<bool> checkUniqueBinders(const Context &Ctx, const Term *T);

/// Checks that every free variable of \p T is in \p AllowedFree (the domain
/// of the initial store the analyzers and interpreters will be given).
Result<bool> checkClosed(const Context &Ctx, const Term *T,
                         const std::set<Symbol> &AllowedFree);

/// Exact structural equality (same shapes, same symbols, same numerals).
bool structurallyEqual(const Term *A, const Term *B);
bool structurallyEqual(const Value *A, const Value *B);

/// Equality up to consistent renaming of bound variables. Free variables
/// must match exactly. Used to compare normal forms produced with
/// different fresh-name streams (e.g. the composite A-normalizer versus
/// the step-wise A-reduction engine).
bool alphaEquivalent(const Term *A, const Term *B);

/// Number of Term and Value nodes in \p T, a simple program-size measure.
size_t countNodes(const Term *T);

/// All lambda values occurring in \p T, in deterministic (node id) order.
/// Together with the primitive tags inc/dec this is the universe of
/// abstract closures used for the loop cut-off value (T, CL_T).
std::vector<const LamValue *> collectLambdas(const Term *T);

/// All let-bound and lambda-bound variables plus free variables, in
/// deterministic order: the variables the abstract store may mention.
std::vector<Symbol> collectVariables(const Term *T);

} // namespace syntax
} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_ANALYSIS_H
