//===- tests/RobustnessTests.cpp - Fuzzing and monotonicity -----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness: the parsers never crash on arbitrary input (deterministic
/// fuzzing) and reject pathological nesting with a diagnostic.
/// Monotonicity: a more precise initial abstract store never yields a
/// less precise analysis result.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "gen/Generator.h"
#include "support/Rng.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <string>

using namespace cpsflow;
using CD = domain::ConstantDomain;

namespace {

TEST(ParserRobustness, RejectsPathologicalNesting) {
  Context Ctx;
  std::string Deep(100000, '(');
  Deep += "1";
  Deep.append(100000, ')');
  Result<const syntax::Term *> R = syntax::parseTerm(Ctx, Deep);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().Message.find("nesting"), std::string::npos);
}

TEST(ParserRobustness, AcceptsReasonableNesting) {
  Context Ctx;
  std::string Source;
  for (int I = 0; I < 200; ++I)
    Source += "(add1 ";
  Source += "1";
  Source.append(200, ')');
  EXPECT_TRUE(syntax::parseTerm(Ctx, Source).hasValue());
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, ParsersNeverCrashOnArbitraryInput) {
  Rng R(GetParam());
  const char Alphabet[] = "()(); \n\tabz019+-lambda let if0 loop add1";
  for (int Case = 0; Case < 300; ++Case) {
    std::string Input;
    size_t Len = R.below(120);
    for (size_t I = 0; I < Len; ++I)
      Input += Alphabet[R.below(sizeof(Alphabet) - 1)];

    Context Ctx;
    // Outcomes don't matter; absence of crashes/UB does.
    (void)syntax::parseSexpr(Input);
    (void)syntax::parseTerm(Ctx, Input);
    (void)syntax::parseSugaredProgram(Ctx, Input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3, 4));

TEST_P(FuzzSweep, ParsedFuzzProgramsSurviveThePipeline) {
  // Anything that parses must normalize, transform, and analyze without
  // crashing (results are unconstrained).
  Rng R(GetParam() + 1000);
  const char Alphabet[] = "()() abz01 lambda let if0 add1 sub1";
  int Parsed = 0;
  for (int Case = 0; Case < 400; ++Case) {
    std::string Input;
    size_t Len = R.below(60);
    for (size_t I = 0; I < Len; ++I)
      Input += Alphabet[R.below(sizeof(Alphabet) - 1)];

    Context Ctx;
    Result<const syntax::Term *> T = syntax::parseTerm(Ctx, Input);
    if (!T)
      continue;
    ++Parsed;
    const syntax::Term *Anf = anf::normalizeProgram(Ctx, *T);
    std::vector<analysis::DirectBinding<CD>> Init;
    for (Symbol S : syntax::freeVars(Anf))
      Init.push_back({S, domain::AbsVal<CD>::number(CD::top())});
    analysis::AnalyzerOptions Opts;
    Opts.MaxGoals = 100000;
    (void)analysis::DirectAnalyzer<CD>(Ctx, Anf, Init, Opts).run();
  }
  // The alphabet is chosen so a reasonable fraction parses.
  EXPECT_GT(Parsed, 0);
}

class MonotonicitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotonicitySweep, MorePreciseInputsGiveMorePreciseResults) {
  Context Ctx;
  gen::GenOptions Opts;
  Opts.Seed = GetParam();
  Opts.ChainLength = 8;
  Opts.MaxDepth = 2;
  Opts.WellTyped = true;
  gen::ProgramGenerator Gen(Ctx, Opts);
  for (int I = 0; I < 20; ++I) {
    const syntax::Term *T = Gen.generate();
    std::vector<analysis::DirectBinding<CD>> Precise, Coarse;
    for (Symbol S : syntax::freeVars(T)) {
      Precise.push_back({S, domain::AbsVal<CD>::number(CD::constant(1))});
      Coarse.push_back({S, domain::AbsVal<CD>::number(CD::top())});
    }
    auto RP = analysis::DirectAnalyzer<CD>(Ctx, T, Precise).run();
    auto RC = analysis::DirectAnalyzer<CD>(Ctx, T, Coarse).run();
    if (RP.Stats.Cuts || RC.Stats.Cuts)
      continue; // cut placement may differ between the two runs
    analysis::Comparison C = analysis::compareDirectWorld<CD>(
        Ctx, RP, RC, syntax::collectVariables(T));
    EXPECT_TRUE(C.Overall == analysis::PrecisionOrder::Equal ||
                C.Overall == analysis::PrecisionOrder::LeftMorePrecise)
        << syntax::print(Ctx, T) << "\n " << str(C.Overall);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicitySweep,
                         ::testing::Values(901, 902, 903));

} // namespace
