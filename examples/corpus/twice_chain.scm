; A let-chain of duplicated calls to one function: the Section 6
; duplication-cost shape, sized to stay cheap for the exact analyzers.
(define (bump x) (add1 (add1 x)))
(let* ((a (bump 0))
       (b (bump a))
       (c (bump b))
       (d (bump c)))
  d)
