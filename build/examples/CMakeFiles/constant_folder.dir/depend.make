# Empty dependencies file for constant_folder.
# This may be replaced when dependencies are built.
