//===- interp/SemanticCps.h - Figure 2: the semantic-CPS machine -*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic-CPS interpreter C of Figure 2: the continuation of the
/// evaluator is reified as an explicit control stack of frames
/// `((let (x []) M), rho)` manipulated by the auxiliary functions `appk`
/// (procedure application) and `appr` (the return operation of an abstract
/// machine: bind the return value, restore the environment, pop the stack).
///
/// Accepts A-normal form only (the frames are `(let (x []) M)` contexts).
/// Lemma 3.1: C agrees with the direct interpreter M.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_INTERP_SEMANTICCPS_H
#define CPSFLOW_INTERP_SEMANTICCPS_H

#include "interp/Direct.h"
#include "interp/Runtime.h"

#include <string>
#include <vector>

namespace cpsflow {
namespace interp {

/// Runs the Figure 2 machine. Single-use, like DirectInterp.
class SemanticCpsInterp {
public:
  explicit SemanticCpsInterp(RunLimits Limits = RunLimits())
      : Limits(Limits) {}

  /// Evaluates the A-normal-form term \p Program with the empty
  /// continuation `nil` and initial bindings \p Initial.
  ///
  /// \pre anf::isAnf(Program) holds; asserted in debug builds.
  RunResult run(const syntax::Term *Program,
                const std::vector<InitialBinding> &Initial = {});

  /// The final store (valid after run).
  const Store &store() const { return TheStore; }

  /// Enables execution tracing (one line per machine transition, capped).
  void enableTrace(const Context &Ctx, size_t MaxLines = 2000) {
    TraceCtx = &Ctx;
    MaxTrace = MaxLines;
  }

  /// The recorded trace.
  const std::vector<std::string> &trace() const { return Trace; }

  /// Largest continuation depth reached; exposed because the contrast with
  /// the store-allocated continuations of Figure 3 is part of the paper's
  /// Section 6.3 point about "only one control stack".
  size_t maxKontDepth() const { return MaxKontDepth; }

private:
  /// A continuation frame ((let (x []) M), rho).
  struct Frame {
    const syntax::LetTerm *Let;
    const EnvNode *Env;
  };

  RunLimits Limits;
  Store TheStore;
  EnvArena Envs;
  size_t MaxKontDepth = 0;
  const Context *TraceCtx = nullptr;
  size_t MaxTrace = 0;
  std::vector<std::string> Trace;
};

} // namespace interp
} // namespace cpsflow

#endif // CPSFLOW_INTERP_SEMANTICCPS_H
