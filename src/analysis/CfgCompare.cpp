//===- analysis/CfgCompare.cpp - Cross-analyzer CFG comparison --*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgCompare.h"

#include <sstream>

using namespace cpsflow;
using namespace cpsflow::analysis;

DirectCfg cpsflow::analysis::sourceView(const cps::CpsProgram &Program,
                                        const CpsCfg &Cfg) {
  DirectCfg Out;

  for (const auto &[Call, Callees] : Cfg.Callees) {
    auto LetIt = Program.ContToLet.find(Call->cont());
    if (LetIt == Program.ContToLet.end())
      continue; // a continuation from outside the program text
    const auto *App =
        syntax::dyn_cast<syntax::AppTerm>(LetIt->second->bound());
    if (!App)
      continue;
    domain::CloSet &Set = Out.Callees[App];
    for (const domain::CpsCloRef &C : Callees) {
      switch (C.Tag) {
      case domain::CpsCloRef::K::Inck:
        Set.insert(domain::CloRef::inc());
        break;
      case domain::CpsCloRef::K::Deck:
        Set.insert(domain::CloRef::dec());
        break;
      case domain::CpsCloRef::K::Lam: {
        auto It = Program.CpsToLam.find(C.Lam);
        if (It != Program.CpsToLam.end())
          Set.insert(domain::CloRef::lam(It->second));
        break;
      }
      }
    }
  }

  for (const auto &[If, BI] : Cfg.Branches) {
    auto LetIt = Program.ContToLet.find(If->join());
    if (LetIt == Program.ContToLet.end())
      continue;
    const auto *SourceIf =
        syntax::dyn_cast<syntax::If0Term>(LetIt->second->bound());
    if (!SourceIf)
      continue;
    BranchInfo &Info = Out.Branches[SourceIf];
    Info.ThenFeasible |= BI.ThenFeasible;
    Info.ElseFeasible |= BI.ElseFeasible;
  }

  return Out;
}

CfgComparison cpsflow::analysis::compareCfgs(const DirectCfg &Left,
                                             const DirectCfg &Right) {
  CfgComparison Out;

  auto ClassifySite = [&](const domain::CloSet *L, const domain::CloSet *R) {
    ++Out.CallSites;
    domain::CloSet Empty;
    const domain::CloSet &A = L ? *L : Empty;
    const domain::CloSet &B = R ? *R : Empty;
    if (A == B) {
      ++Out.EqualSites;
      return;
    }
    bool AinB = domain::CloSet::leq(A, B);
    bool BinA = domain::CloSet::leq(B, A);
    if (BinA)
      ++Out.LeftExtra;
    else if (AinB)
      ++Out.RightExtra;
    else
      ++Out.IncomparableSites;
  };

  for (const auto &[Site, Callees] : Left.Callees) {
    auto It = Right.Callees.find(Site);
    ClassifySite(&Callees, It == Right.Callees.end() ? nullptr : &It->second);
  }
  for (const auto &[Site, Callees] : Right.Callees)
    if (!Left.Callees.count(Site))
      ClassifySite(nullptr, &Callees);

  for (const auto &[If, BI] : Left.Branches) {
    ++Out.Branches;
    auto It = Right.Branches.find(If);
    if (It != Right.Branches.end() &&
        It->second.ThenFeasible == BI.ThenFeasible &&
        It->second.ElseFeasible == BI.ElseFeasible)
      ++Out.EqualBranches;
  }
  for (const auto &[If, BI] : Right.Branches)
    if (!Left.Branches.count(If)) {
      ++Out.Branches;
      (void)BI;
    }

  return Out;
}

std::string cpsflow::analysis::str(const CfgComparison &C) {
  std::ostringstream O;
  O << C.EqualSites << "/" << C.CallSites << " call sites equal";
  if (C.LeftExtra)
    O << ", " << C.LeftExtra << " with extra left callees";
  if (C.RightExtra)
    O << ", " << C.RightExtra << " with extra right callees";
  if (C.IncomparableSites)
    O << ", " << C.IncomparableSites << " incomparable";
  O << "; " << C.EqualBranches << "/" << C.Branches << " branches equal";
  return O.str();
}
