//===- fuzz/Campaign.cpp - Parallel differential fuzzing campaign -*- C++-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include "anf/Anf.h"
#include "fuzz/Mutator.h"
#include "fuzz/Rewrite.h"
#include "gen/Digest.h"
#include "gen/Generator.h"
#include "support/Hashing.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "syntax/Printer.h"
#include "syntax/Sugar.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace cpsflow {
namespace fuzz {

namespace {

/// Everything one task hands back to the wave barrier.
struct TaskOut {
  uint64_t Task = 0;
  bool Ran = false; ///< reached the oracles (false: generation failed)
  uint32_t Checked = 0;
  analysis::AnalyzerStats LegStats[NumLegs];
  std::vector<Finding> Findings;
};

/// Digest of \p Source: structural when it parses (rename-insensitive
/// naming comes from the printer's canonical output), textual otherwise.
uint64_t sourceDigest(const std::string &Source) {
  Context Ctx;
  Result<const syntax::Term *> Raw = syntax::parseSugaredProgram(Ctx, Source);
  if (Raw)
    return gen::termDigest(Ctx, anf::normalizeProgram(Ctx, *Raw));
  return gen::textDigest(Source);
}

std::string oneLine(std::string S) {
  for (char &C : S)
    if (C == '\n' || C == '\r')
      C = ' ';
  return S;
}

/// Draws this task's input program. Sources: seed mutation, finding
/// crossover, generator stream — all decided by the task-private Rng.
std::string
drawProgram(Rng &Random,
            const std::vector<std::pair<std::string, std::string>> &Seeds,
            const std::vector<std::string> &CrossPool,
            std::string &Provenance) {
  uint64_t Roll = Random.below(100);
  if (!Seeds.empty() && Roll < 45) {
    const auto &S = Seeds[Random.below(Seeds.size())];
    Mutator M(Random.next());
    if (std::optional<std::string> P = M.mutate(S.second)) {
      Provenance = "mutate:" + S.first;
      return *P;
    }
  } else if (!CrossPool.empty() && Roll < 60) {
    const std::string &A = CrossPool[Random.below(CrossPool.size())];
    const std::string &B = CrossPool[Random.below(CrossPool.size())];
    Mutator M(Random.next());
    if (std::optional<std::string> P = M.crossover(A, B)) {
      Provenance = "crossover";
      return *P;
    }
  }
  Context Ctx;
  gen::GenOptions G;
  G.Seed = Random.next();
  G.NumFreeVars = 1 + static_cast<uint32_t>(Random.below(3));
  G.ChainLength = 3 + static_cast<uint32_t>(Random.below(8));
  G.MaxDepth = 1 + static_cast<uint32_t>(Random.below(3));
  G.NumeralRange = 5;
  G.WellTyped = Random.chance(1, 2);
  G.AllowLoop = Random.chance(1, 8);
  gen::ProgramGenerator Gen(Ctx, G);
  Provenance = "gen";
  return syntax::print(Ctx, Gen.generate());
}

TaskOut runTask(uint64_t Task, const CampaignOptions &Opts,
                const std::vector<std::pair<std::string, std::string>> &Seeds,
                const std::vector<std::string> &CrossPool) {
  TaskOut Out;
  Out.Task = Task;

  std::string Program, Provenance;
  try {
    Rng Random(mix64(Opts.FuzzSeed) ^ mix64(Task + 1));
    Program = drawProgram(Random, Seeds, CrossPool, Provenance);

    OracleOptions OOpts = Opts.Oracle;
    OOpts.Trace = nullptr; // per-goal tracing is per-run; see runCampaign
    Result<OracleOutcome> Res = checkSource(Program, OOpts);
    if (!Res) {
      // Campaign inputs are printer output, so this is an infrastructure
      // failure of the pipeline itself — surface it as a finding.
      Finding F;
      F.Task = Task;
      F.Internal = true;
      F.Message = oneLine(Res.error().Message);
      F.Source = Provenance;
      F.Program = F.Reproducer = Program;
      F.Digest = sourceDigest(Program);
      Out.Findings.push_back(std::move(F));
      return Out;
    }
    Out.Ran = true;
    Out.Checked = Res->Checked;
    for (unsigned L = 0; L < NumLegs; ++L)
      Out.LegStats[L] = Res->LegStats[L];

    // One finding per violated oracle (first message wins), each
    // minimized against that oracle alone.
    uint32_t Seen = 0;
    for (const OracleViolation &V : Res->Violations) {
      if (Seen & maskOf(V.Id))
        continue;
      Seen |= maskOf(V.Id);
      Finding F;
      F.Task = Task;
      F.Oracle = V.Id;
      F.Message = oneLine(V.Message);
      F.Source = Provenance;
      F.Program = Program;
      F.Reproducer = Program;
      if (Opts.Shrink) {
        ShrinkResult SR = shrink(Program, V.Id, OOpts, Opts.Shrink0);
        F.Reproducer = SR.Program;
        F.LetsBefore = SR.LetsBefore;
        F.LetsAfter = SR.LetsAfter;
      } else {
        Context Ctx;
        if (Result<const syntax::Term *> Raw =
                syntax::parseSugaredProgram(Ctx, Program))
          F.LetsBefore = F.LetsAfter =
              letCount(anf::normalizeProgram(Ctx, *Raw));
      }
      F.Digest = sourceDigest(F.Reproducer);
      Out.Findings.push_back(std::move(F));
    }
  } catch (const std::exception &E) {
    Finding F;
    F.Task = Task;
    F.Internal = true;
    F.Message = oneLine(std::string("escaped exception: ") + E.what());
    F.Source = Provenance.empty() ? "gen" : Provenance;
    F.Program = F.Reproducer = Program;
    F.Digest = Program.empty() ? 0 : sourceDigest(Program);
    Out.Findings.push_back(std::move(F));
  }
  return Out;
}

const char *oracleTag(const Finding &F) {
  return F.Internal ? "internal" : tag(F.Oracle);
}

} // namespace

CampaignResult runCampaign(
    const CampaignOptions &Opts,
    const std::vector<std::pair<std::string, std::string>> &Seeds) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  auto ElapsedSec = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };

  CampaignResult R;
  for (const auto &S : Seeds)
    R.SeedNames.push_back(S.first);

  unsigned Threads = std::max(1u, Opts.Threads);
  ThreadPool Pool(Threads);
  // The wave size must NOT depend on the thread count: crossover pools
  // snapshot at wave boundaries, so a thread-dependent wave would make
  // the findings thread-dependent too.
  uint64_t WaveSize = Opts.Wave ? Opts.Wave : 32;

  uint64_t Task = 0;
  while (R.Findings.size() < Opts.MaxFindings) {
    // Interrupt: finish folding what completed, skip scheduling more.
    // In-flight tasks inside a wave degrade through the governor's
    // interrupt probe, so the Pool.wait() below stays short.
    if (Opts.Oracle.Interrupt && Opts.Oracle.Interrupt->cancelled()) {
      R.Interrupted = true;
      break;
    }
    uint64_t End;
    if (Opts.Iterations) {
      if (Task >= Opts.Iterations)
        break;
      End = std::min(Task + WaveSize, Opts.Iterations);
    } else {
      if (ElapsedSec() >= Opts.Seconds)
        break;
      End = Task + WaveSize;
    }

    // The crossover pool is a snapshot of the findings of *completed*
    // waves: wave-deterministic, scheduler-independent.
    std::vector<std::string> CrossPool;
    CrossPool.reserve(R.Findings.size());
    for (const Finding &F : R.Findings)
      CrossPool.push_back(F.Program);

    std::vector<TaskOut> Slots(End - Task);
    {
      support::TraceSpan Span(Opts.Trace,
                              "wave " + std::to_string(Task / WaveSize),
                              "fuzz");
      for (uint64_t I = Task; I < End; ++I)
        Pool.submit([&Slots, &Opts, &Seeds, &CrossPool, I, Task] {
          Slots[I - Task] = runTask(I, Opts, Seeds, CrossPool);
        });
      Pool.wait();
    }

    // Fold in task order, so the findings list is scheduling-independent.
    for (TaskOut &T : Slots) {
      for (unsigned O = 0; O < NumOracles; ++O)
        if (T.Checked & (1u << O))
          ++R.Tally[O].Checked;
      for (unsigned L = 0; L < NumLegs; ++L) {
        R.LegTotals[L].Goals += T.LegStats[L].Goals;
        R.LegTotals[L].CacheHits += T.LegStats[L].CacheHits;
        R.LegTotals[L].Cuts += T.LegStats[L].Cuts;
      }
      for (Finding &F : T.Findings) {
        if (!F.Internal)
          ++R.Tally[static_cast<unsigned>(F.Oracle)].Violations;
        if (Opts.Trace)
          Opts.Trace->instant(std::string("finding ") + oracleTag(F),
                              "fuzz");
        R.Findings.push_back(std::move(F));
      }
    }
    Task = End;
  }

  R.Iterations = Task;
  R.WallMs = ElapsedSec() * 1000.0;
  return R;
}

std::string campaignJson(const CampaignResult &R,
                         const CampaignOptions &Opts) {
  JsonWriter W;
  W.beginObject();
  W.key("schemaVersion").value(FindingsSchemaVersion);
  W.key("kind").value("fuzz");
  W.key("fuzzSeed").value(Opts.FuzzSeed);
  W.key("domain").value(Opts.Oracle.Domain);
  W.key("iterations").value(R.Iterations);
  // Only interrupted campaigns carry the marker, keeping un-interrupted
  // documents byte-identical to earlier schema-1 reports.
  if (R.Interrupted)
    W.key("interrupted").value(true);
  if (Opts.IncludeTiming) {
    W.key("threads").value(static_cast<uint64_t>(std::max(1u, Opts.Threads)));
    W.key("wallMs").value(R.WallMs);
  }

  W.key("seeds").beginArray();
  for (const std::string &S : R.SeedNames)
    W.value(S);
  W.endArray();

  W.key("oracles").beginArray();
  for (unsigned O = 0; O < NumOracles; ++O) {
    OracleId Id = static_cast<OracleId>(O);
    bool Enabled = (Opts.Oracle.Mask & maskOf(Id)) != 0;
    W.beginObject();
    W.key("id").value(tag(Id));
    W.key("name").value(describe(Id));
    W.key("enabled").value(Enabled);
    W.key("checked").value(R.Tally[O].Checked);
    W.key("violations").value(R.Tally[O].Violations);
    if (Opts.IncludeTiming && R.WallMs > 0)
      W.key("execPerSec")
          .value(static_cast<double>(R.Tally[O].Checked) /
                 (R.WallMs / 1000.0));
    W.endObject();
  }
  W.endArray();

  W.key("findings").beginArray();
  for (const Finding &F : R.Findings) {
    char Hex[24];
    std::snprintf(Hex, sizeof(Hex), "%016llx",
                  static_cast<unsigned long long>(F.Digest));
    W.beginObject();
    W.key("task").value(F.Task);
    W.key("oracle").value(oracleTag(F));
    W.key("message").value(F.Message);
    W.key("source").value(F.Source);
    W.key("digest").value(Hex);
    W.key("letsBefore").value(static_cast<uint64_t>(F.LetsBefore));
    W.key("letsAfter").value(static_cast<uint64_t>(F.LetsAfter));
    W.key("program").value(F.Program);
    W.key("reproducer").value(F.Reproducer);
    W.endObject();
  }
  W.endArray();

  // bench_diff compatibility: a "programs" array whose "campaign" entry
  // carries the per-leg work-counter sums, plus one ok/violated row per
  // oracle. Two fuzz reports with the same seed and iteration count diff
  // cleanly against each other.
  static const char *const LegNames[NumLegs] = {"direct", "semantic",
                                                "syntactic", "dup",
                                                "pushdown"};
  W.key("programs").beginArray();
  W.beginObject();
  W.key("name").value("campaign");
  W.key("ok").value(true);
  for (unsigned L = 0; L < NumLegs; ++L) {
    W.key(LegNames[L]).beginObject();
    W.key("goals").value(R.LegTotals[L].Goals);
    W.key("cacheHits").value(R.LegTotals[L].CacheHits);
    W.key("cuts").value(R.LegTotals[L].Cuts);
    W.endObject();
  }
  W.endObject();
  for (unsigned O = 0; O < NumOracles; ++O) {
    W.beginObject();
    W.key("name").value(tag(static_cast<OracleId>(O)));
    W.key("ok").value(R.Tally[O].Violations == 0);
    W.endObject();
  }
  W.endArray();

  W.endObject();
  return W.str();
}

std::string campaignSummary(const CampaignResult &R,
                            const CampaignOptions &Opts) {
  std::ostringstream O;
  O << "fuzz: " << R.Iterations << " iterations, domain "
    << Opts.Oracle.Domain << ", seed " << Opts.FuzzSeed;
  if (Opts.IncludeTiming)
    O << ", " << static_cast<uint64_t>(R.WallMs) << " ms";
  O << "\n";
  for (unsigned I = 0; I < NumOracles; ++I) {
    OracleId Id = static_cast<OracleId>(I);
    if (!(Opts.Oracle.Mask & maskOf(Id)))
      continue;
    O << "  " << tag(Id) << " " << describe(Id) << ": "
      << R.Tally[I].Checked << " checked, " << R.Tally[I].Violations
      << " violations\n";
  }
  if (R.Findings.empty()) {
    O << "  no findings\n";
  } else {
    O << "  " << R.Findings.size() << " finding(s):\n";
    for (const Finding &F : R.Findings)
      O << "    [" << oracleTag(F) << "] task " << F.Task << " ("
        << F.Source << ", " << F.LetsBefore << " -> " << F.LetsAfter
        << " lets): " << F.Message << "\n";
  }
  return O.str();
}

std::string reproducerName(const Finding &F) {
  char Hex[24];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(F.Digest));
  return std::string(oracleTag(F)) + "-" + Hex + ".scm";
}

std::string reproducerFile(const Finding &F, const CampaignOptions &Opts) {
  std::ostringstream O;
  O << "; cpsflow fuzz reproducer\n";
  O << "; oracle: " << oracleTag(F);
  if (!F.Internal)
    O << " (" << describe(F.Oracle) << ")";
  O << "\n";
  O << "; domain: " << Opts.Oracle.Domain << "\n";
  O << "; fuzz-seed: " << Opts.FuzzSeed << " task: " << F.Task
    << " source: " << F.Source << "\n";
  O << "; message: " << F.Message << "\n";
  O << "; replay: cpsflow fuzz --replay " << reproducerName(F)
    << " --domain " << Opts.Oracle.Domain;
  if (!F.Internal)
    O << " --oracles " << tag(F.Oracle);
  O << "\n";
  O << F.Reproducer << "\n";
  return O.str();
}

Result<size_t> writeFindings(const std::string &Dir, const CampaignResult &R,
                             const CampaignOptions &Opts) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return Error("cannot create findings dir '" + Dir + "': " +
                 Ec.message());

  size_t Written = 0;
  auto WriteFile = [&](const std::string &Name,
                       const std::string &Text) -> bool {
    std::ofstream Out(fs::path(Dir) / Name, std::ios::binary);
    if (!Out)
      return false;
    Out << Text;
    ++Written;
    return true;
  };

  for (const Finding &F : R.Findings)
    if (!WriteFile(reproducerName(F), reproducerFile(F, Opts)))
      return Error("cannot write reproducer under '" + Dir + "'");

  // findings.json: the findings array plus enough context to replay.
  JsonWriter W;
  W.beginObject();
  W.key("fuzzSeed").value(Opts.FuzzSeed);
  W.key("domain").value(Opts.Oracle.Domain);
  W.key("findings").beginArray();
  for (const Finding &F : R.Findings) {
    W.beginObject();
    W.key("file").value(reproducerName(F));
    W.key("task").value(F.Task);
    W.key("oracle").value(oracleTag(F));
    W.key("message").value(F.Message);
    W.key("source").value(F.Source);
    W.key("letsBefore").value(static_cast<uint64_t>(F.LetsBefore));
    W.key("letsAfter").value(static_cast<uint64_t>(F.LetsAfter));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  if (!WriteFile("findings.json", W.str()))
    return Error("cannot write findings.json under '" + Dir + "'");
  return Written;
}

Result<OracleOutcome> replaySource(const std::string &Source,
                                   const OracleOptions &Opts) {
  // Reproducer headers are `;` comments, which the lexer skips, so the
  // file content replays as-is.
  return checkSource(Source, Opts);
}

} // namespace fuzz
} // namespace cpsflow
