//===- support/Result.h - Error-or-value returns ----------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small Expected-style result type.
///
/// The library does not use exceptions. Fallible operations (parsing,
/// grammar validation, interpretation of stuck programs) return
/// Result<T>, which carries either a value or an Error with a message and
/// an optional source location.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_RESULT_H
#define CPSFLOW_SUPPORT_RESULT_H

#include "support/SourceLoc.h"

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace cpsflow {

/// A diagnostic describing why an operation failed.
///
/// Message style follows the convention of starting lowercase and omitting
/// the trailing period, e.g. "unbound variable 'x'".
struct Error {
  std::string Message;
  SourceLoc Loc;

  Error() = default;
  explicit Error(std::string Message, SourceLoc Loc = SourceLoc())
      : Message(std::move(Message)), Loc(Loc) {}

  /// Renders as "line:col: message" when the location is known.
  std::string str() const {
    if (!Loc.isValid())
      return Message;
    return Loc.str() + ": " + Message;
  }
};

/// Either a \p T or an Error.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Result(Error E) : Storage(std::move(E)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }
  bool hasValue() const { return static_cast<bool>(*this); }

  T &operator*() {
    assert(hasValue() && "dereferencing an error result");
    return std::get<T>(Storage);
  }
  const T &operator*() const {
    assert(hasValue() && "dereferencing an error result");
    return std::get<T>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const Error &error() const {
    assert(!hasValue() && "taking the error of a success result");
    return std::get<Error>(Storage);
  }

  /// Moves the value out; the result must hold one.
  T take() {
    assert(hasValue() && "taking the value of an error result");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_RESULT_H
