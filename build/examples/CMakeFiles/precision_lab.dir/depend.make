# Empty dependencies file for precision_lab.
# This may be replaced when dependencies are built.
