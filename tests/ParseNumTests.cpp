//===- tests/ParseNumTests.cpp - Checked flag parsing -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked numeric parsing (the std::atoi replacement behind every CLI
/// flag), the public jsonEscape helper, and the JSON reader the tests and
/// bench_diff use to validate our own emitters.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/JsonParse.h"
#include "support/ParseNum.h"

#include <gtest/gtest.h>

#include <limits>

using namespace cpsflow;
using namespace cpsflow::support;

namespace {

TEST(ParseNum, UintAcceptsPlainDigits) {
  EXPECT_EQ(*parseUint("0"), 0u);
  EXPECT_EQ(*parseUint("42"), 42u);
  EXPECT_EQ(*parseUint("18446744073709551615"),
            std::numeric_limits<uint64_t>::max());
}

TEST(ParseNum, UintRejectsTheAtoiFailureModes) {
  // Each of these silently became 0 (or a truncated value) under atoi.
  EXPECT_FALSE(parseUint("").hasValue());
  EXPECT_FALSE(parseUint("abc").hasValue());
  EXPECT_FALSE(parseUint("12abc").hasValue()); // trailing junk
  EXPECT_FALSE(parseUint("-3").hasValue());    // sign on an unsigned flag
  EXPECT_FALSE(parseUint("+3").hasValue());
  EXPECT_FALSE(parseUint(" 3").hasValue());    // leading space
  EXPECT_FALSE(parseUint("3 ").hasValue());
  EXPECT_FALSE(parseUint("18446744073709551616").hasValue()); // 2^64
  EXPECT_FALSE(parseUint("99999999999999999999999").hasValue());
}

TEST(ParseNum, UintEnforcesCallerMax) {
  EXPECT_EQ(*parseUint("4096", 4096), 4096u);
  Result<uint64_t> R = parseUint("4097", 4096);
  ASSERT_FALSE(R.hasValue());
  EXPECT_NE(R.error().Message.find("4096"), std::string::npos)
      << "the error must name the limit: " << R.error().Message;
}

TEST(ParseNum, IntHandlesSignsAndExtremes) {
  EXPECT_EQ(*parseInt("-7"), -7);
  EXPECT_EQ(*parseInt("+7"), 7);
  EXPECT_EQ(*parseInt("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(*parseInt("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_FALSE(parseInt("-9223372036854775809").hasValue());
  EXPECT_FALSE(parseInt("9223372036854775808").hasValue());
  EXPECT_FALSE(parseInt("--5").hasValue());
  EXPECT_FALSE(parseInt("5-").hasValue());
  EXPECT_FALSE(parseInt("").hasValue());
  EXPECT_FALSE(parseInt("-").hasValue());
}

TEST(ParseNum, MsRejectsNonFiniteAndNegative) {
  EXPECT_DOUBLE_EQ(*parseNonNegativeMs("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parseNonNegativeMs("0"), 0.0);
  EXPECT_FALSE(parseNonNegativeMs("-1").hasValue());
  EXPECT_FALSE(parseNonNegativeMs("nan").hasValue());
  EXPECT_FALSE(parseNonNegativeMs("inf").hasValue());
  EXPECT_FALSE(parseNonNegativeMs("2.5ms").hasValue());
  EXPECT_FALSE(parseNonNegativeMs("").hasValue());
}

TEST(Json, EscapeCoversEveryStringHazard) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonParse, RoundTripsEscapedStrings) {
  // Writer and reader agree on every escape class.
  std::string Raw = "we\"ird\\na\tme\n\x02";
  std::string Doc = "{\"k\":\"" + jsonEscape(Raw) + "\"}";
  Result<JsonValue> V = parseJson(Doc);
  ASSERT_TRUE(V.hasValue()) << V.error().Message;
  EXPECT_EQ(V->find("k")->asString(), Raw);
}

TEST(JsonParse, ParsesTheBasicShapes) {
  Result<JsonValue> V =
      parseJson("{\"a\":[1,2.5,-3],\"b\":{\"c\":true,\"d\":null},\"e\":\"s\"}");
  ASSERT_TRUE(V.hasValue()) << V.error().Message;
  const JsonValue *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->items().size(), 3u);
  EXPECT_DOUBLE_EQ(A->items()[1].asNumber(), 2.5);
  EXPECT_DOUBLE_EQ(A->items()[2].asNumber(), -3.0);
  EXPECT_TRUE(V->find("b")->find("c")->asBool());
  EXPECT_TRUE(V->find("b")->find("d")->isNull());
  EXPECT_EQ(V->find("e")->asString(), "s");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(parseJson("").hasValue());
  EXPECT_FALSE(parseJson("{").hasValue());
  EXPECT_FALSE(parseJson("{\"a\":1,}").hasValue());
  EXPECT_FALSE(parseJson("{\"a\" 1}").hasValue());
  EXPECT_FALSE(parseJson("[1 2]").hasValue());
  EXPECT_FALSE(parseJson("\"unterminated").hasValue());
  EXPECT_FALSE(parseJson("{} trailing").hasValue());
  EXPECT_FALSE(parseJson("tru").hasValue());
  // The depth cap turns a hostile nest into an error, not a stack
  // overflow.
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  EXPECT_FALSE(parseJson(Deep).hasValue());
}

} // namespace
