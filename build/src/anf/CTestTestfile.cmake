# CMake generated Testfile for 
# Source directory: /root/repo/src/anf
# Build directory: /root/repo/build/src/anf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
