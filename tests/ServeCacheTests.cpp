//===- tests/ServeCacheTests.cpp - Crash-safe result cache ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serve ResultCache's crash-safety contract: a round-tripped entry
/// is byte-identical; a truncated, bit-flipped, zero-filled, or
/// trailing-garbage entry is detected on read, quarantined, and reported
/// as a miss (so the caller recomputes — corruption is never served and
/// never fatal); a torn write (injected or real) never publishes a
/// readable entry; and the key covers exactly the inputs that change the
/// computed answer.
///
//===----------------------------------------------------------------------===//

#include "serve/ResultCache.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace cpsflow;
using namespace cpsflow::serve;
namespace fs = std::filesystem;

namespace {

/// A fresh cache directory per test, removed on teardown.
class ServeCacheTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("cpsflow-cache-test-" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
           "-" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
  }
  void TearDown() override { fs::remove_all(Dir); }

  CacheKey key() {
    CacheKey K;
    K.SourceDigest = 0x1234abcd5678ef01ull;
    K.Analyzer = "direct";
    K.Domain = "constant";
    K.MaxGoals = 5'000'000;
    K.LoopUnroll = 64;
    K.DupBudget = 2;
    K.UseSummaries = true;
    return K;
  }

  /// Reads the raw entry file for \p K.
  static std::string slurp(const std::string &Path) {
    std::ifstream In(Path, std::ios::binary);
    std::string S((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
    return S;
  }

  /// Overwrites the entry file for \p K with \p Bytes.
  static void scribble(const std::string &Path, const std::string &Bytes) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  size_t quarantineCount(ResultCache &C) {
    size_t N = 0;
    fs::path Q = fs::path(C.dir()) / "quarantine";
    if (fs::exists(Q))
      for (const auto &E : fs::directory_iterator(Q)) {
        (void)E;
        ++N;
      }
    return N;
  }

  fs::path Dir;
};

TEST_F(ServeCacheTest, RoundTripIsByteIdentical) {
  ResultCache C(Dir.string());
  ASSERT_TRUE(C.ok());
  CacheKey K = key();
  EXPECT_FALSE(C.lookup(K).has_value());
  std::string Payload = "{\"answer\":\"(5, {})\",\"stats\":{\"goals\":5}}";
  ASSERT_TRUE(C.store(K, Payload));
  std::optional<std::string> Got = C.lookup(K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, Payload);
  ResultCache::CacheStats S = C.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Stores, 1u);
  EXPECT_EQ(S.Corrupt, 0u);
}

TEST_F(ServeCacheTest, SurvivesDaemonRestart) {
  CacheKey K = key();
  std::string Payload = "persistent-payload";
  {
    ResultCache C(Dir.string());
    ASSERT_TRUE(C.store(K, Payload));
  }
  ResultCache C2(Dir.string());
  std::optional<std::string> Got = C2.lookup(K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, Payload);
}

TEST_F(ServeCacheTest, TruncatedEntryIsQuarantinedAndRecomputedThrough) {
  ResultCache C(Dir.string());
  CacheKey K = key();
  std::string Payload(1024, 'x');
  Payload += "tail-that-matters";
  ASSERT_TRUE(C.store(K, Payload));

  // Simulate a crash mid-write that left a short file behind.
  std::string Raw = slurp(C.entryPath(K));
  ASSERT_GT(Raw.size(), 64u);
  scribble(C.entryPath(K), Raw.substr(0, Raw.size() / 2));

  EXPECT_FALSE(C.lookup(K).has_value()) << "truncated entry must miss";
  EXPECT_EQ(C.stats().Corrupt, 1u);
  EXPECT_EQ(quarantineCount(C), 1u);
  EXPECT_FALSE(fs::exists(C.entryPath(K))) << "bad entry must be moved out";

  // The recompute path: store again, and the payload round-trips
  // byte-identically (corruption cost a recompute, nothing else).
  ASSERT_TRUE(C.store(K, Payload));
  std::optional<std::string> Got = C.lookup(K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, Payload);
}

TEST_F(ServeCacheTest, BitFlippedPayloadIsDetected) {
  ResultCache C(Dir.string());
  CacheKey K = key();
  std::string Payload = "the checksummed payload body 0123456789";
  ASSERT_TRUE(C.store(K, Payload));

  std::string Raw = slurp(C.entryPath(K));
  Raw[Raw.size() - 4] ^= 0x20; // flip one bit near the end of the payload
  scribble(C.entryPath(K), Raw);

  EXPECT_FALSE(C.lookup(K).has_value()) << "bit flip must fail the checksum";
  EXPECT_EQ(C.stats().Corrupt, 1u);
  EXPECT_EQ(quarantineCount(C), 1u);
}

TEST_F(ServeCacheTest, ZeroFilledEntryIsDetected) {
  ResultCache C(Dir.string());
  CacheKey K = key();
  ASSERT_TRUE(C.store(K, "real payload"));
  std::string Raw = slurp(C.entryPath(K));
  scribble(C.entryPath(K), std::string(Raw.size(), '\0'));
  EXPECT_FALSE(C.lookup(K).has_value());
  EXPECT_EQ(C.stats().Corrupt, 1u);
}

TEST_F(ServeCacheTest, TrailingGarbageIsDetected) {
  ResultCache C(Dir.string());
  CacheKey K = key();
  ASSERT_TRUE(C.store(K, "clean"));
  std::string Raw = slurp(C.entryPath(K));
  scribble(C.entryPath(K), Raw + "overlong-extra-bytes");
  EXPECT_FALSE(C.lookup(K).has_value())
      << "a frame longer than its declared size is corrupt, not a hit";
  EXPECT_EQ(C.stats().Corrupt, 1u);
}

TEST_F(ServeCacheTest, KeyCoversEveryAnswerChangingInput) {
  CacheKey Base = key();
  uint64_t H = cacheKeyHash(Base);
  CacheKey K = Base;
  K.SourceDigest ^= 1;
  EXPECT_NE(cacheKeyHash(K), H);
  K = Base;
  K.Analyzer = "semantic";
  EXPECT_NE(cacheKeyHash(K), H);
  K = Base;
  K.Domain = "interval";
  EXPECT_NE(cacheKeyHash(K), H);
  K = Base;
  K.MaxGoals += 1;
  EXPECT_NE(cacheKeyHash(K), H);
  K = Base;
  K.LoopUnroll += 1;
  EXPECT_NE(cacheKeyHash(K), H);
  K = Base;
  K.DupBudget += 1;
  EXPECT_NE(cacheKeyHash(K), H);
  K = Base;
  K.UseSummaries = !K.UseSummaries;
  EXPECT_NE(cacheKeyHash(K), H);
}

TEST_F(ServeCacheTest, DistinctKeysDoNotCollideInStorage) {
  ResultCache C(Dir.string());
  CacheKey A = key();
  CacheKey B = key();
  B.Analyzer = "syntactic";
  ASSERT_TRUE(C.store(A, "answer-A"));
  ASSERT_TRUE(C.store(B, "answer-B"));
  EXPECT_EQ(*C.lookup(A), "answer-A");
  EXPECT_EQ(*C.lookup(B), "answer-B");
}

TEST_F(ServeCacheTest, UnusableRootDegradesToNoop) {
  // A path that cannot be a directory: the cache must degrade to a
  // cache-off daemon, not a failed one.
  ResultCache C("/dev/null/not-a-directory");
  EXPECT_FALSE(C.ok());
  CacheKey K = key();
  EXPECT_FALSE(C.lookup(K).has_value());
  EXPECT_FALSE(C.store(K, "payload"));
}

#ifdef CPSFLOW_FAULT_INJECTION
TEST_F(ServeCacheTest, InjectedTornWriteIsNeverServed) {
  ResultCache C(Dir.string());
  CacheKey K = key();
  std::string Payload(512, 'p');
  {
    fault::ScopedFault F({fault::Site::CacheWrite, fault::Action::Tear,
                          /*Name=*/"", /*AtCount=*/1, /*Every=*/0,
                          /*StallMs=*/0});
    EXPECT_FALSE(C.store(K, Payload)) << "a torn store must report failure";
  }
  EXPECT_EQ(C.stats().StoreFailures, 1u);
  // The torn frame is on disk (rename happened — the modeled crash is
  // after publish); reading it must quarantine, not serve.
  EXPECT_FALSE(C.lookup(K).has_value());
  EXPECT_EQ(C.stats().Corrupt, 1u);
  EXPECT_EQ(quarantineCount(C), 1u);

  // Recovery: the next (untorn) store round-trips byte-identically.
  ASSERT_TRUE(C.store(K, Payload));
  std::optional<std::string> Got = C.lookup(K);
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, Payload);
}
#endif // CPSFLOW_FAULT_INJECTION

TEST_F(ServeCacheTest, ForcedDigestCollisionMissesInsteadOfAliasing) {
  // Two different programs whose primary source digests collide: both
  // keys address the same entry file. Before the identity check in the
  // frame header, B's lookup would be served A's answer.
  ResultCache C(Dir.string());
  CacheKey A = key();
  A.SourceDigest2 = 0xaaaaaaaaaaaaaaaaull;
  A.SourceLen = 41;
  CacheKey B = A; // same SourceDigest => same filename hash
  B.SourceDigest2 = 0xbbbbbbbbbbbbbbbbull;
  B.SourceLen = 77;
  ASSERT_EQ(C.entryPath(A), C.entryPath(B))
      << "the forced collision must actually alias the entry file";

  ASSERT_TRUE(C.store(A, "answer-for-A"));
  EXPECT_FALSE(C.lookup(B).has_value())
      << "a colliding key must miss, never be served the other's answer";
  EXPECT_EQ(C.stats().Collisions, 1u);
  EXPECT_EQ(C.stats().Corrupt, 0u) << "a collision is not corruption";
  EXPECT_TRUE(fs::exists(C.entryPath(A)))
      << "the other program's live entry must not be quarantined";
  EXPECT_EQ(*C.lookup(A), "answer-for-A");

  // B recomputes and stores: last writer wins the shared filename, and
  // now A is the one that misses. Thrashing, never lying.
  ASSERT_TRUE(C.store(B, "answer-for-B"));
  EXPECT_EQ(*C.lookup(B), "answer-for-B");
  EXPECT_FALSE(C.lookup(A).has_value());
  EXPECT_EQ(C.stats().Collisions, 2u);
}

TEST_F(ServeCacheTest, SourceLengthAloneDistinguishesColliders) {
  ResultCache C(Dir.string());
  CacheKey A = key();
  A.SourceDigest2 = 0x1111111111111111ull;
  A.SourceLen = 10;
  CacheKey B = A;
  B.SourceLen = 11; // digest2 equal too — length is the only difference
  ASSERT_TRUE(C.store(A, "short-source-answer"));
  EXPECT_FALSE(C.lookup(B).has_value());
  EXPECT_EQ(C.stats().Collisions, 1u);
}

TEST_F(ServeCacheTest, StaleFormatEntryIsRemovedNotQuarantined) {
  ResultCache C(Dir.string());
  CacheKey K = key();
  ASSERT_TRUE(C.store(K, "payload-v2"));

  // Rewrite the entry as a well-formed frame of the previous format:
  // magic, version 1, byte count, checksum, no source identity.
  std::string Raw = slurp(C.entryPath(K));
  size_t HeaderEnd = Raw.find('\n');
  ASSERT_NE(HeaderEnd, std::string::npos);
  std::istringstream Header(Raw.substr(0, HeaderEnd));
  std::string Word, Sum, SrcLen, D2;
  int Version = 0;
  uint64_t Bytes = 0;
  ASSERT_TRUE(
      static_cast<bool>(Header >> Word >> Version >> Bytes >> Sum >> SrcLen >>
                        D2));
  std::ostringstream V1;
  V1 << Word << " 1 " << Bytes << ' ' << Sum << '\n'
     << Raw.substr(HeaderEnd + 1);
  scribble(C.entryPath(K), V1.str());

  EXPECT_FALSE(C.lookup(K).has_value()) << "pre-upgrade entries are misses";
  EXPECT_EQ(C.stats().Corrupt, 0u) << "a format change is not corruption";
  EXPECT_EQ(quarantineCount(C), 0u);
  EXPECT_FALSE(fs::exists(C.entryPath(K)))
      << "the dead-format entry is removed so it is only ever read once";
}

TEST_F(ServeCacheTest, StaleTmpFilesAreSweptOnOpen) {
  CacheKey K = key();
  {
    ResultCache C(Dir.string());
    ASSERT_TRUE(C.store(K, "survivor-entry"));
  }
  fs::path Entries = Dir / "entries";

  // A tmp leaked by a writer that is certainly dead: fork a child that
  // exits immediately and use its (reaped, unreused) pid.
  pid_t DeadPid = ::fork();
  if (DeadPid == 0)
    ::_exit(0);
  ASSERT_GT(DeadPid, 0);
  ASSERT_EQ(::waitpid(DeadPid, nullptr, 0), DeadPid);
  fs::path DeadTmp =
      Entries / (".tmp." + std::to_string(DeadPid) + ".1");
  scribble(DeadTmp.string(), "half-written");

  // A tmp whose pid is alive (ours — modeling pid reuse) but whose file
  // predates any plausible in-flight write.
  fs::path OldTmp =
      Entries / (".tmp." + std::to_string(::getpid()) + ".777");
  scribble(OldTmp.string(), "ancient");
  fs::last_write_time(OldTmp,
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(1));

  // A concurrent writer's fresh tmp: our live pid, current mtime.
  fs::path FreshTmp =
      Entries / (".tmp." + std::to_string(::getpid()) + ".778");
  scribble(FreshTmp.string(), "in-flight");

  ResultCache C2(Dir.string());
  ASSERT_TRUE(C2.ok());
  EXPECT_FALSE(fs::exists(DeadTmp)) << "dead-pid tmp must be swept";
  EXPECT_FALSE(fs::exists(OldTmp)) << "over-age tmp must be swept";
  EXPECT_TRUE(fs::exists(FreshTmp))
      << "a live writer's fresh tmp must survive the sweep";
  EXPECT_EQ(C2.stats().SweptTmp, 2u);
  EXPECT_EQ(*C2.lookup(K), "survivor-entry")
      << "the sweep must not touch published entries";
}

} // namespace
