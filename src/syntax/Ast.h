//===- syntax/Ast.h - AST for the source language A -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the source language A of Section 2 of the paper:
///
/// \code
///   M ::= V | (M M) | (let (x M) M) | (if0 M M M) | (loop)
///   V ::= n | x | add1 | sub1 | (lambda (x) M)
/// \endcode
///
/// `(loop)` is the Section 6.2 extension: a construct whose exact collecting
/// semantics is the infinite set {0, 1, 2, ...} and whose concrete semantics
/// diverges (it stands for `x := 0; while true x := x + 1`).
///
/// The restricted subset the analyzers run on (A-normal form) is the same
/// AST constrained to the shapes checked by anf::isAnf:
///
/// \code
///   M ::= V | (let (x V) M) | (let (x (V V)) M)
///       | (let (x (if0 V M M)) M) | (let (x (loop)) M)
/// \endcode
///
/// Nodes are immutable, arena-allocated, and identified by pointer; every
/// node also carries a small sequential id for deterministic printing.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SYNTAX_AST_H
#define CPSFLOW_SYNTAX_AST_H

#include "support/Arena.h"
#include "support/SourceLoc.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>

namespace cpsflow {

class Context;

namespace syntax {

class Term;

//===----------------------------------------------------------------------===//
// Syntactic values V
//===----------------------------------------------------------------------===//

/// Discriminator for the syntactic value hierarchy.
enum class ValueKind : uint8_t {
  VK_Num,  ///< numeral n
  VK_Var,  ///< variable x
  VK_Prim, ///< add1 or sub1
  VK_Lam,  ///< (lambda (x) M)
};

/// The two primitive procedures of the language.
enum class PrimOp : uint8_t {
  Add1, ///< successor; closes to the run-time tag `inc`
  Sub1, ///< predecessor; closes to the run-time tag `dec`
};

/// Base class of syntactic values V.
class Value {
public:
  ValueKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  /// Sequential id within the owning Context; stable print order.
  uint32_t id() const { return Id; }

protected:
  Value(ValueKind Kind, SourceLoc Loc, uint32_t Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  ValueKind Kind;
  SourceLoc Loc;
  uint32_t Id;
};

/// A numeral.
class NumValue : public Value {
public:
  NumValue(int64_t N, SourceLoc Loc, uint32_t Id)
      : Value(ValueKind::VK_Num, Loc, Id), N(N) {}

  int64_t value() const { return N; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::VK_Num; }

private:
  int64_t N;
};

/// A variable reference.
class VarValue : public Value {
public:
  VarValue(Symbol Name, SourceLoc Loc, uint32_t Id)
      : Value(ValueKind::VK_Var, Loc, Id), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::VK_Var; }

private:
  Symbol Name;
};

/// One of the primitive procedures add1 / sub1.
class PrimValue : public Value {
public:
  PrimValue(PrimOp Op, SourceLoc Loc, uint32_t Id)
      : Value(ValueKind::VK_Prim, Loc, Id), Op(Op) {}

  PrimOp op() const { return Op; }

  static bool classof(const Value *V) {
    return V->kind() == ValueKind::VK_Prim;
  }

private:
  PrimOp Op;
};

/// A user-defined one-argument procedure (lambda (x) M).
class LamValue : public Value {
public:
  LamValue(Symbol Param, const Term *Body, SourceLoc Loc, uint32_t Id)
      : Value(ValueKind::VK_Lam, Loc, Id), Param(Param), Body(Body) {}

  Symbol param() const { return Param; }
  const Term *body() const { return Body; }

  static bool classof(const Value *V) { return V->kind() == ValueKind::VK_Lam; }

private:
  Symbol Param;
  const Term *Body;
};

//===----------------------------------------------------------------------===//
// Terms M
//===----------------------------------------------------------------------===//

/// Discriminator for the term hierarchy.
enum class TermKind : uint8_t {
  TK_Value, ///< a syntactic value used as a term
  TK_App,   ///< (M M)
  TK_Let,   ///< (let (x M) M)
  TK_If0,   ///< (if0 M M M)
  TK_Loop,  ///< (loop) — Section 6.2 extension
};

/// Base class of terms M.
class Term {
public:
  TermKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  /// Sequential id within the owning Context; stable print order.
  uint32_t id() const { return Id; }

protected:
  Term(TermKind Kind, SourceLoc Loc, uint32_t Id)
      : Kind(Kind), Loc(Loc), Id(Id) {}

private:
  TermKind Kind;
  SourceLoc Loc;
  uint32_t Id;
};

/// A value in term position.
class ValueTerm : public Term {
public:
  ValueTerm(const Value *V, SourceLoc Loc, uint32_t Id)
      : Term(TermKind::TK_Value, Loc, Id), V(V) {}

  const Value *value() const { return V; }

  static bool classof(const Term *T) { return T->kind() == TermKind::TK_Value; }

private:
  const Value *V;
};

/// An application (M M).
class AppTerm : public Term {
public:
  AppTerm(const Term *Fun, const Term *Arg, SourceLoc Loc, uint32_t Id)
      : Term(TermKind::TK_App, Loc, Id), Fun(Fun), Arg(Arg) {}

  const Term *fun() const { return Fun; }
  const Term *arg() const { return Arg; }

  static bool classof(const Term *T) { return T->kind() == TermKind::TK_App; }

private:
  const Term *Fun;
  const Term *Arg;
};

/// A let binding (let (x M1) M2): evaluate M1, bind to x, evaluate M2.
class LetTerm : public Term {
public:
  LetTerm(Symbol Var, const Term *Bound, const Term *Body, SourceLoc Loc,
          uint32_t Id)
      : Term(TermKind::TK_Let, Loc, Id), Var(Var), Bound(Bound), Body(Body) {}

  Symbol var() const { return Var; }
  const Term *bound() const { return Bound; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::TK_Let; }

private:
  Symbol Var;
  const Term *Bound;
  const Term *Body;
};

/// A conditional (if0 M1 M2 M3): branch to M2 if M1 evaluates to 0,
/// otherwise to M3.
class If0Term : public Term {
public:
  If0Term(const Term *Cond, const Term *Then, const Term *Else, SourceLoc Loc,
          uint32_t Id)
      : Term(TermKind::TK_If0, Loc, Id), Cond(Cond), Then(Then), Else(Else) {}

  const Term *cond() const { return Cond; }
  const Term *thenBranch() const { return Then; }
  const Term *elseBranch() const { return Else; }

  static bool classof(const Term *T) { return T->kind() == TermKind::TK_If0; }

private:
  const Term *Cond;
  const Term *Then;
  const Term *Else;
};

/// The explicit looping construct of Section 6.2. Concretely it diverges;
/// its exact collecting semantics is the set of all natural numbers.
class LoopTerm : public Term {
public:
  LoopTerm(SourceLoc Loc, uint32_t Id) : Term(TermKind::TK_Loop, Loc, Id) {}

  static bool classof(const Term *T) { return T->kind() == TermKind::TK_Loop; }
};

//===----------------------------------------------------------------------===//
// Checked casts (LLVM-style isa/cast/dyn_cast over the kind tags)
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa<> on null node");
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

} // namespace syntax

//===----------------------------------------------------------------------===//
// Context
//===----------------------------------------------------------------------===//

/// Owns the symbol table and the arena behind every AST node of a program
/// and of everything derived from it (its A-normal form, its CPS transform,
/// abstract continuation frames). A Context must outlive all nodes created
/// through it.
class Context {
public:
  Context() = default;
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  SymbolTable &symbols() { return Symbols; }
  const SymbolTable &symbols() const { return Symbols; }

  /// Interning shorthand.
  Symbol intern(std::string_view Name) { return Symbols.intern(Name); }
  /// Fresh-name shorthand.
  Symbol fresh(std::string_view Stem) { return Symbols.fresh(Stem); }
  /// Spelling shorthand.
  std::string_view spelling(Symbol S) const { return Symbols.spelling(S); }

  /// Allocates an AST node, threading through the next sequential id.
  template <typename T, typename... Args> const T *create(Args &&...ArgList) {
    return Nodes.create<T>(std::forward<Args>(ArgList)..., NextId++);
  }

  /// Number of nodes created so far (ids are < this bound).
  uint32_t numNodes() const { return NextId; }

private:
  SymbolTable Symbols;
  Arena Nodes;
  uint32_t NextId = 0;
};

} // namespace cpsflow

#endif // CPSFLOW_SYNTAX_AST_H
