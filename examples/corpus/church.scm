; Church numerals: higher-order flow with closures passed as arguments.
(define (zero f x) x)
(define (succ n) (lambda (f x) (f (n f x))))
(define (to-int n) (n add1 0))
(to-int (succ (succ (succ zero))))
