//===- support/FaultInjector.h - Test-only fault injection ------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the containment tests: throw or
/// stall at named sites inside the analyzers and the batch driver, so
/// tests can prove that one failing program becomes a structured failure
/// record instead of a dead batch, and that the watchdog reclaims a
/// stalled worker.
///
/// The whole facility is compiled out unless CPSFLOW_FAULT_INJECTION is
/// defined (CMake option of the same name; forced off for Release
/// builds): the CPSFLOW_FAULT_* macros expand to nothing, so release
/// binaries carry zero fault-injection code or data. When compiled in,
/// the disarmed fast path is a single relaxed atomic load per site hit.
///
/// Usage (tests):
///
///   fault::ScopedFault F(
///       {fault::Site::BatchWorker, fault::Action::Throw, "bad.scm"});
///   ... run the batch; "bad.scm" fails with an injected logic error ...
///
/// Sites:
///   * AnalyzerGoal — hit once per proof goal with the goal ordinal;
///     trips when the ordinal equals Plan.AtCount (deterministic across
///     thread counts and runs).
///   * BatchWorker — hit at the top of a batch worker body with the
///     program name; trips when the name matches Plan.Name ("" = every
///     program).
///   * FuzzOracle — hit at the top of each fuzz oracle check with the
///     oracle tag ("O1".."O7"); trips when the tag matches Plan.Name
///     ("" = every oracle). The fuzz checker turns the injected throw
///     into a reported oracle violation, so tests (and the nightly
///     canary) can prove the campaign's detect → shrink → replay path
///     works end to end.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_FAULTINJECTOR_H
#define CPSFLOW_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string>

#ifdef CPSFLOW_FAULT_INJECTION
#include <atomic>
#include <chrono>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>
#endif

namespace cpsflow {
namespace fault {

/// Where a fault can fire.
enum class Site : uint8_t {
  AnalyzerGoal, ///< analyzer goal prologue (counted)
  BatchWorker,  ///< batch worker body entry (named)
  FuzzOracle,   ///< fuzz oracle check entry (named by oracle, e.g. "O2")
  ServeWorker,  ///< serve worker request body entry (counted per request)
  ServeHandler, ///< serve handler prologue (counted; Stall fodder)
  CacheWrite,   ///< result-cache entry write (named by cache key; Tear)
};

/// What firing does.
enum class Action : uint8_t {
  Throw,    ///< throw std::logic_error("injected fault: ...")
  BadAlloc, ///< throw std::bad_alloc (simulated allocation failure)
  Stall,    ///< sleep StallMs (simulated hang; watchdog fodder)
  Tear,     ///< cooperative: shouldTear() reports true and the site
            ///< simulates a torn/partial write (the cache's crash model)
};

/// One armed fault.
struct Plan {
  Site Where = Site::BatchWorker;
  Action What = Action::Throw;
  std::string Name;      ///< BatchWorker/CacheWrite: name; "" matches all
  uint64_t AtCount = 1;  ///< counted sites: fire when ordinal == AtCount
  uint64_t Every = 0;    ///< counted sites: additionally fire when
                         ///< ordinal % Every == 0 (0 = off; soak mode)
  uint32_t StallMs = 0;  ///< Stall duration
};

#ifdef CPSFLOW_FAULT_INJECTION

namespace detail {
inline std::atomic<bool> Armed{false};
inline std::mutex M;
inline std::vector<Plan> Plans;

[[noreturn]] inline void raise(const Plan &P, const std::string &What) {
  if (P.What == Action::BadAlloc)
    throw std::bad_alloc();
  throw std::logic_error("injected fault: " + What);
}

inline void fire(const Plan &P, const std::string &What) {
  if (P.What == Action::Stall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(P.StallMs));
    return;
  }
  raise(P, What);
}
} // namespace detail

/// Arms \p P (in addition to any already armed).
inline void arm(Plan P) {
  std::lock_guard<std::mutex> Lock(detail::M);
  detail::Plans.push_back(std::move(P));
  detail::Armed.store(true, std::memory_order_relaxed);
}

/// Disarms everything.
inline void disarmAll() {
  std::lock_guard<std::mutex> Lock(detail::M);
  detail::Plans.clear();
  detail::Armed.store(false, std::memory_order_relaxed);
}

/// Site hit keyed by name (BatchWorker). Tear plans never fire here —
/// they are cooperative and only answer shouldTear().
inline void hitNamed(Site S, const std::string &Name) {
  if (!detail::Armed.load(std::memory_order_relaxed))
    return;
  Plan Hit;
  bool Found = false;
  {
    std::lock_guard<std::mutex> Lock(detail::M);
    for (const Plan &P : detail::Plans)
      if (P.Where == S && P.What != Action::Tear &&
          (P.Name.empty() || P.Name == Name)) {
        Hit = P;
        Found = true;
        break;
      }
  }
  if (Found)
    detail::fire(Hit, Name); // outside the lock: may stall or throw
}

/// Site hit keyed by ordinal (AnalyzerGoal, ServeWorker, ServeHandler).
/// A plan fires at an exact ordinal (AtCount) or periodically (Every).
inline void hitCounted(Site S, uint64_t Ordinal) {
  if (!detail::Armed.load(std::memory_order_relaxed))
    return;
  Plan Hit;
  bool Found = false;
  {
    std::lock_guard<std::mutex> Lock(detail::M);
    for (const Plan &P : detail::Plans)
      if (P.Where == S && P.What != Action::Tear &&
          ((P.AtCount && P.AtCount == Ordinal) ||
           (P.Every && Ordinal % P.Every == 0))) {
        Hit = P;
        Found = true;
        break;
      }
  }
  if (Found)
    detail::fire(Hit, "goal " + std::to_string(Ordinal));
}

/// Cooperative torn-write query (CacheWrite): true when a Tear plan
/// matches \p Name. The caller simulates the crash-mid-write itself —
/// the injector cannot usefully throw halfway through an I/O sequence.
inline bool shouldTear(Site S, const std::string &Name) {
  if (!detail::Armed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> Lock(detail::M);
  for (const Plan &P : detail::Plans)
    if (P.Where == S && P.What == Action::Tear &&
        (P.Name.empty() || P.Name == Name))
      return true;
  return false;
}

/// RAII arming for tests.
class ScopedFault {
public:
  explicit ScopedFault(Plan P) { arm(std::move(P)); }
  ~ScopedFault() { disarmAll(); }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
};

#define CPSFLOW_FAULT_NAMED(S, N) ::cpsflow::fault::hitNamed(S, N)
#define CPSFLOW_FAULT_COUNTED(S, C) ::cpsflow::fault::hitCounted(S, C)
#define CPSFLOW_FAULT_TEARS(S, N) ::cpsflow::fault::shouldTear(S, N)

#else // !CPSFLOW_FAULT_INJECTION

#define CPSFLOW_FAULT_NAMED(S, N) ((void)0)
#define CPSFLOW_FAULT_COUNTED(S, C) ((void)0)
#define CPSFLOW_FAULT_TEARS(S, N) (false)

#endif // CPSFLOW_FAULT_INJECTION

} // namespace fault
} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_FAULTINJECTOR_H
