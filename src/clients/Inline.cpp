//===- clients/Inline.cpp - Heuristic inlining client -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "clients/Inline.h"

#include "anf/Anf.h"
#include "syntax/Analysis.h"
#include "syntax/Builder.h"

#include <unordered_map>
#include <unordered_set>

using namespace cpsflow;
using namespace cpsflow::clients;
using namespace cpsflow::syntax;

namespace {

/// Finds let-bound lambdas that are only ever used in operator position.
class CandidateScan {
public:
  std::unordered_map<Symbol, const LamValue *> Lambdas;
  std::unordered_set<Symbol> Escaping;

  void term(const Term *T) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      value(cast<ValueTerm>(T)->value(), /*OperatorPos=*/false);
      return;
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      // In ANF both parts are ValueTerms; the operator position is the
      // one place a use does not escape.
      if (const auto *FV = dyn_cast<ValueTerm>(App->fun()))
        value(FV->value(), /*OperatorPos=*/true);
      else
        term(App->fun());
      if (const auto *AV = dyn_cast<ValueTerm>(App->arg()))
        value(AV->value(), /*OperatorPos=*/false);
      else
        term(App->arg());
      return;
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      // Record a directly lambda-bound variable as a candidate.
      if (const auto *VT = dyn_cast<ValueTerm>(Let->bound()))
        if (const auto *Lam = dyn_cast<LamValue>(VT->value()))
          Lambdas.emplace(Let->var(), Lam);
      term(Let->bound());
      term(Let->body());
      return;
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      term(If->cond());
      term(If->thenBranch());
      term(If->elseBranch());
      return;
    }
    case TermKind::TK_Loop:
      return;
    }
  }

private:
  void value(const Value *V, bool OperatorPos) {
    switch (V->kind()) {
    case ValueKind::VK_Num:
    case ValueKind::VK_Prim:
      return;
    case ValueKind::VK_Var:
      if (!OperatorPos)
        Escaping.insert(cast<VarValue>(V)->name());
      return;
    case ValueKind::VK_Lam:
      term(cast<LamValue>(V)->body());
      return;
    }
  }
};

/// Capture-avoiding substitution of a syntactic value for a variable.
/// Sound here because binders are unique: nothing in \p T rebinds \p X or
/// any variable free in \p V.
class Subst {
public:
  Subst(Context &Ctx, Symbol X, const Value *V) : B(Ctx), X(X), V(V) {}

  const Term *term(const Term *T) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      return B.val(value(cast<ValueTerm>(T)->value()), T->loc());
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      return B.app(term(App->fun()), term(App->arg()), T->loc());
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      return B.let(Let->var(), term(Let->bound()), term(Let->body()),
                   T->loc());
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      return B.if0(term(If->cond()), term(If->thenBranch()),
                   term(If->elseBranch()), T->loc());
    }
    case TermKind::TK_Loop:
      return B.loop(T->loc());
    }
    return T;
  }

private:
  const Value *value(const Value *Val) {
    if (const auto *Var = dyn_cast<VarValue>(Val))
      if (Var->name() == X)
        return V;
    if (const auto *Lam = dyn_cast<LamValue>(Val))
      return B.lam(Lam->param(), term(Lam->body()), Lam->loc());
    return Val;
  }

  Builder B;
  Symbol X;
  const Value *V;
};

/// One inlining pass: rewrites eligible call sites to copies of the
/// callee body (as full-language let-bound terms; the caller
/// re-normalizes).
class InlinePass {
public:
  InlinePass(Context &Ctx, const CandidateScan &Scan,
             const InlineOptions &Opts)
      : Ctx(Ctx), B(Ctx), Scan(Scan), Opts(Opts) {}

  size_t InlinedCalls = 0;

  const Term *term(const Term *T) {
    switch (T->kind()) {
    case TermKind::TK_Value:
      return B.val(value(cast<ValueTerm>(T)->value()), T->loc());
    case TermKind::TK_App: {
      const auto *App = cast<AppTerm>(T);
      if (const Term *Expanded = tryInline(App))
        return Expanded;
      return B.app(term(App->fun()), term(App->arg()), T->loc());
    }
    case TermKind::TK_Let: {
      const auto *Let = cast<LetTerm>(T);
      return B.let(Let->var(), term(Let->bound()), term(Let->body()),
                   T->loc());
    }
    case TermKind::TK_If0: {
      const auto *If = cast<If0Term>(T);
      return B.if0(term(If->cond()), term(If->thenBranch()),
                   term(If->elseBranch()), T->loc());
    }
    case TermKind::TK_Loop:
      return B.loop(T->loc());
    }
    return T;
  }

private:
  /// If \p App is `(f v)` with f an eligible candidate, \returns a copy
  /// of f's body with the parameter substituted by v.
  const Term *tryInline(const AppTerm *App) {
    const auto *FV = dyn_cast<ValueTerm>(App->fun());
    const auto *AV = dyn_cast<ValueTerm>(App->arg());
    if (!FV || !AV)
      return nullptr;
    const auto *Var = dyn_cast<VarValue>(FV->value());
    if (!Var)
      return nullptr;
    if (Scan.Escaping.count(Var->name()))
      return nullptr;
    auto It = Scan.Lambdas.find(Var->name());
    if (It == Scan.Lambdas.end())
      return nullptr;
    const LamValue *Lam = It->second;
    if (countNodes(Lam->body()) > Opts.MaxBodyNodes)
      return nullptr;

    ++InlinedCalls;
    // Substitute the (already rewritten) argument value for the
    // parameter; duplicate binders introduced by multiple copies are
    // resolved by the re-normalization that follows the pass. Keep
    // rewriting inside the copy so nested calls inline in the same pass.
    const Value *Arg = value(AV->value());
    const Term *Body = Subst(Ctx, Lam->param(), Arg).term(Lam->body());
    return term(Body);
  }

  const Value *value(const Value *Val) {
    if (const auto *Lam = dyn_cast<LamValue>(Val))
      return B.lam(Lam->param(), term(Lam->body()), Lam->loc());
    return Val;
  }

  Context &Ctx;
  Builder B;
  const CandidateScan &Scan;
  const InlineOptions &Opts;
};

} // namespace

InlineResult cpsflow::clients::inlineCalls(Context &Ctx,
                                           const syntax::Term *Anf,
                                           InlineOptions Opts) {
  InlineResult Out;
  const Term *Current = Anf;
  size_t BaseSize = countNodes(Anf);

  for (uint32_t Pass = 0; Pass < Opts.MaxPasses; ++Pass) {
    CandidateScan Scan;
    Scan.term(Current);
    if (Scan.Lambdas.empty())
      break;

    InlinePass P(Ctx, Scan, Opts);
    const Term *Rewritten = P.term(Current);
    if (P.InlinedCalls == 0)
      break;

    Out.InlinedCalls += P.InlinedCalls;
    ++Out.Passes;
    Current = anf::normalizeProgram(Ctx, Rewritten);
    if (countNodes(Current) >
        static_cast<size_t>(BaseSize * Opts.MaxGrowth))
      break;
  }

  Out.Inlined = Current;
  return Out;
}
