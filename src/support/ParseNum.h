//===- support/ParseNum.h - Checked numeric parsing -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked string-to-number parsing for command-line flags. The
/// std::atoi/strtoull family silently turns garbage into 0, wraps
/// negatives, and truncates out-of-range values — exactly the failure
/// modes a CLI must report instead. These helpers reject empty input,
/// trailing junk, signs where unsigned values are expected, and values
/// outside the caller's range, returning a Result whose message names the
/// offending text.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_PARSENUM_H
#define CPSFLOW_SUPPORT_PARSENUM_H

#include "support/Result.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <string_view>

namespace cpsflow {
namespace support {

/// Parses \p Text as a base-10 unsigned integer in [0, \p Max]. Rejects
/// empty input, any sign, leading/trailing junk, and overflow.
inline Result<uint64_t>
parseUint(std::string_view Text,
          uint64_t Max = std::numeric_limits<uint64_t>::max()) {
  if (Text.empty())
    return Error("expected a number, got ''");
  for (char C : Text)
    if (C < '0' || C > '9')
      return Error("expected an unsigned integer, got '" +
                   std::string(Text) + "'");
  uint64_t V = 0;
  for (char C : Text) {
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (std::numeric_limits<uint64_t>::max() - Digit) / 10)
      return Error("value '" + std::string(Text) + "' is out of range");
    V = V * 10 + Digit;
  }
  if (V > Max)
    return Error("value '" + std::string(Text) + "' exceeds the maximum " +
                 std::to_string(Max));
  return V;
}

/// Parses \p Text as a base-10 signed integer in [\p Min, \p Max].
/// Rejects empty input, junk, and overflow.
inline Result<int64_t>
parseInt(std::string_view Text,
         int64_t Min = std::numeric_limits<int64_t>::min(),
         int64_t Max = std::numeric_limits<int64_t>::max()) {
  bool Negative = false;
  std::string_view Digits = Text;
  if (!Digits.empty() && (Digits[0] == '-' || Digits[0] == '+')) {
    Negative = Digits[0] == '-';
    Digits.remove_prefix(1);
  }
  Result<uint64_t> Mag = parseUint(Digits);
  if (!Mag)
    return Error("expected an integer, got '" + std::string(Text) + "'");
  uint64_t Limit = Negative
                       ? static_cast<uint64_t>(
                             std::numeric_limits<int64_t>::max()) +
                             1
                       : static_cast<uint64_t>(
                             std::numeric_limits<int64_t>::max());
  if (*Mag > Limit)
    return Error("value '" + std::string(Text) + "' is out of range");
  int64_t V;
  if (Negative)
    V = *Mag == Limit ? std::numeric_limits<int64_t>::min()
                      : -static_cast<int64_t>(*Mag);
  else
    V = static_cast<int64_t>(*Mag);
  if (V < Min || V > Max)
    return Error("value '" + std::string(Text) + "' is out of range");
  return V;
}

/// Parses \p Text as a non-negative decimal number (for millisecond
/// flags). Rejects empty input, trailing junk, negatives, NaN/inf.
inline Result<double> parseNonNegativeMs(std::string_view Text) {
  if (Text.empty())
    return Error("expected a number, got ''");
  std::string Buf(Text);
  char *End = nullptr;
  errno = 0;
  double V = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size() || errno == ERANGE)
    return Error("expected a number, got '" + Buf + "'");
  if (!(V >= 0) || V != V || V > 1e18) // rejects NaN, negatives, inf
    return Error("value '" + Buf + "' must be a finite non-negative number");
  return V;
}

} // namespace support
} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_PARSENUM_H
