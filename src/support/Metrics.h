//===- support/Metrics.h - Counters and histograms --------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics layer for the analyzers: named counters and
/// log2-bucketed histograms collected into a per-run MetricsRegistry.
///
/// The paper's Section 6 argument is quantitative — duplication cost, cut
/// frequency, loop-join behaviour — so the analyzers expose more than a
/// final answer: goal counts, cache behaviour, interner footprint, and
/// the *distributions* behind the scalars (goal depth, store width).
/// CFA2 and the pushdown-CFA line of work lean on exactly this kind of
/// instrumentation (visit counts, frontier sizes, per-benchmark tables)
/// to compare analyses; this header is our equivalent.
///
/// Design constraints:
///
///  * Zero overhead when disabled. The analyzers hold a
///    `MetricsRegistry *` that defaults to null; the per-goal hook is a
///    single predicted-false pointer test.
///  * Deterministic. Iteration order is insertion order, histogram
///    buckets are fixed powers of two, and quantiles are bucket upper
///    bounds — two runs that do the same work render byte-identical
///    metrics (wall-clock counters are the caller's to include or omit).
///  * Allocation-light. Counter/histogram lookups by name are amortized
///    O(1) (hashed index over a stable deque).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_METRICS_H
#define CPSFLOW_SUPPORT_METRICS_H

#include "support/Json.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cpsflow {
namespace support {

/// A log2-bucketed histogram of uint64 samples. Bucket i counts samples
/// whose bit width is i, i.e. bucket 0 holds the value 0, bucket i>0
/// holds [2^(i-1), 2^i). Exact count/sum/min/max ride along so the
/// summary is precise even though the shape is bucketed.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  void record(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++N;
    Sum += V;
    Lo = N == 1 ? V : std::min(Lo, V);
    Hi = std::max(Hi, V);
  }

  void merge(const Histogram &O) {
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    if (O.N) {
      Lo = N == 0 ? O.Lo : std::min(Lo, O.Lo);
      Hi = std::max(Hi, O.Hi);
    }
    N += O.N;
    Sum += O.Sum;
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return N ? Lo : 0; }
  uint64_t max() const { return Hi; }
  uint64_t bucket(unsigned I) const { return Buckets[I]; }

  /// The inclusive upper edge of bucket \p I (0 for bucket 0, 2^I - 1
  /// otherwise). Public so exposition formats that need the bucket
  /// boundaries — the Prometheus renderer's `le` labels — do not
  /// duplicate the bucketing scheme.
  static uint64_t bucketUpperEdge(unsigned I) {
    if (I == 0)
      return 0;
    if (I >= 64)
      return UINT64_MAX;
    return (uint64_t{1} << I) - 1;
  }

  /// An upper bound for the \p Q quantile (0 < Q <= 1): the inclusive
  /// upper edge of the bucket holding the ceil(Q*N)-th smallest sample.
  /// Deterministic by construction; max() tightens the last bucket.
  uint64_t quantileBound(double Q) const {
    if (N == 0)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
    if (Rank == 0)
      Rank = 1;
    if (Rank > N)
      Rank = N;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen >= Rank)
        return std::min(upperEdge(I), Hi);
    }
    return Hi;
  }

  /// "n=12 sum=340 p50<=16 p95<=64 max=57".
  std::string str() const {
    std::ostringstream O;
    O << "n=" << N << " sum=" << Sum << " p50<=" << quantileBound(0.5)
      << " p95<=" << quantileBound(0.95) << " max=" << Hi;
    return O.str();
  }

  /// {"n":..,"sum":..,"p50Bound":..,"p95Bound":..,"max":..}. The quantile
  /// keys are *Bound because they are log2-bucket upper bounds, not exact
  /// nearest-rank quantiles — the batch report's metrics section computes
  /// exact "p50"/"p95", and sharing names would invite cross-schema
  /// confusion in bench_diff (which reads both spellings).
  void writeJson(JsonWriter &W) const {
    W.beginObject();
    W.key("n").value(N);
    W.key("sum").value(Sum);
    W.key("p50Bound").value(quantileBound(0.5));
    W.key("p95Bound").value(quantileBound(0.95));
    W.key("max").value(Hi);
    W.endObject();
  }

private:
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B;
  }

  static uint64_t upperEdge(unsigned I) { return bucketUpperEdge(I); }

  uint64_t Buckets[NumBuckets] = {};
  uint64_t N = 0;
  uint64_t Sum = 0;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
};

/// A histogram over a sliding sample window: the serving layer wants
/// "latency over the last while", not "latency since boot" (a daemon up
/// for a week would bury a regression under a week of healthy samples).
///
/// Two-generation scheme: samples land in the current generation; when
/// it reaches WindowSamples the previous generation is discarded and the
/// current one takes its place. snapshot() merges both generations, so
/// it always covers between WindowSamples and 2*WindowSamples of the
/// most recent samples (never fewer than the last WindowSamples, and
/// nothing older than the last 2*WindowSamples). Deterministic: rotation
/// is by sample count, not wall clock.
class WindowedHistogram {
public:
  explicit WindowedHistogram(uint64_t WindowSamples = 1024)
      : WindowSamples(WindowSamples ? WindowSamples : 1) {}

  void record(uint64_t V) {
    Cur.record(V);
    ++Total;
    if (Cur.count() >= WindowSamples) {
      Prev = Cur;
      Cur = Histogram();
    }
  }

  /// The merged previous + current generations: the most recent
  /// WindowSamples..2*WindowSamples samples.
  Histogram snapshot() const {
    Histogram H = Prev;
    H.merge(Cur);
    return H;
  }

  uint64_t windowSamples() const { return WindowSamples; }
  /// Samples ever recorded (not just the ones still in the window).
  uint64_t totalRecorded() const { return Total; }

  /// Generation-wise merge (best effort — two windows observed on
  /// different schedules have no exact common window).
  void merge(const WindowedHistogram &O) {
    Prev.merge(O.Prev);
    Cur.merge(O.Cur);
    Total += O.Total;
  }

private:
  uint64_t WindowSamples;
  uint64_t Total = 0;
  Histogram Prev;
  Histogram Cur;
};

/// Named counters and histograms for one analyzer run (or one aggregated
/// corpus). Names are interned on first use; iteration is insertion
/// order, so rendering is deterministic. Not thread-safe — one registry
/// per single-threaded run, merged afterwards.
///
/// Beyond the original counters and histograms the registry carries two
/// serving-layer kinds:
///
///  * Gauges — point-in-time values (queue depth, memo-table size) set
///    with setGauge(). Rendered as plain numbers in JSON (same shape as
///    counters) but as `gauge` in the Prometheus exposition, and merged
///    by max, not sum.
///  * Windowed histograms — see WindowedHistogram. Rendered as their
///    snapshot() summary in JSON.
///
/// A metric name may carry a Prometheus-style label suffix,
/// `base{key="value"}`: JSON uses the full spelling as the object key,
/// while writePrometheus() splits it so all series of `base` group under
/// one `# TYPE` family with per-series labels.
class MetricsRegistry {
public:
  /// Adds \p Delta to counter \p Name (creating it at zero).
  void add(std::string_view Name, uint64_t Delta) {
    counterRef(Name) += Delta;
  }

  /// Sets counter \p Name to \p V.
  void set(std::string_view Name, uint64_t V) { counterRef(Name) = V; }

  /// Raises counter \p Name to at least \p V (peak semantics).
  void setMax(std::string_view Name, uint64_t V) {
    uint64_t &C = counterRef(Name);
    C = std::max(C, V);
  }

  uint64_t counter(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    if (It == Index.end() || It->second.Kind != EntryKind::Counter)
      return 0;
    return Counters[It->second.Pos];
  }

  bool hasCounter(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    return It != Index.end() && It->second.Kind == EntryKind::Counter;
  }

  /// Sets gauge \p Name to the point-in-time value \p V (creating it at
  /// zero). A name is one kind forever: a gauge name can never collide
  /// with a counter or histogram.
  void setGauge(std::string_view Name, uint64_t V) {
    auto [It, Inserted] = Index.try_emplace(std::string(Name));
    if (Inserted) {
      Counters.push_back(0);
      It->second = {EntryKind::Gauge, Counters.size() - 1};
      Order.push_back(&It->first);
    }
    assert(It->second.Kind == EntryKind::Gauge &&
           "metric name already used as another kind");
    Counters[It->second.Pos] = V;
  }

  uint64_t gauge(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    if (It == Index.end() || It->second.Kind != EntryKind::Gauge)
      return 0;
    return Counters[It->second.Pos];
  }

  bool hasGauge(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    return It != Index.end() && It->second.Kind == EntryKind::Gauge;
  }

  /// The histogram \p Name (creating it empty). The reference is stable
  /// for the registry's lifetime. A name is a counter or a histogram,
  /// never both.
  Histogram &histogram(std::string_view Name) {
    auto [It, Inserted] = Index.try_emplace(std::string(Name));
    if (Inserted) {
      Histograms.emplace_back();
      It->second = {EntryKind::Histogram, Histograms.size() - 1};
      Order.push_back(&It->first);
    }
    assert(It->second.Kind == EntryKind::Histogram &&
           "metric name already used as a counter");
    return Histograms[It->second.Pos];
  }

  const Histogram *findHistogram(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    if (It == Index.end() || It->second.Kind != EntryKind::Histogram)
      return nullptr;
    return &Histograms[It->second.Pos];
  }

  /// The windowed histogram \p Name (creating it with \p WindowSamples).
  /// The first creation fixes the window size; the reference is stable
  /// for the registry's lifetime.
  WindowedHistogram &windowed(std::string_view Name,
                              uint64_t WindowSamples = 1024) {
    auto [It, Inserted] = Index.try_emplace(std::string(Name));
    if (Inserted) {
      Windows.emplace_back(WindowSamples);
      It->second = {EntryKind::Windowed, Windows.size() - 1};
      Order.push_back(&It->first);
    }
    assert(It->second.Kind == EntryKind::Windowed &&
           "metric name already used as another kind");
    return Windows[It->second.Pos];
  }

  const WindowedHistogram *findWindowed(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    if (It == Index.end() || It->second.Kind != EntryKind::Windowed)
      return nullptr;
    return &Windows[It->second.Pos];
  }

  /// Merges \p O into this registry: counters add, gauges take the max
  /// (point-in-time values do not sum), histograms and windows merge.
  /// Names absent here are created at their position in \p O 's order.
  void merge(const MetricsRegistry &O) {
    for (const std::string *Name : O.Order) {
      const Entry &E = O.Index.find(*Name)->second;
      switch (E.Kind) {
      case EntryKind::Counter:
        add(*Name, O.Counters[E.Pos]);
        break;
      case EntryKind::Gauge:
        setGauge(*Name, std::max(gauge(*Name), O.Counters[E.Pos]));
        break;
      case EntryKind::Histogram:
        histogram(*Name).merge(O.Histograms[E.Pos]);
        break;
      case EntryKind::Windowed:
        windowed(*Name, O.Windows[E.Pos].windowSamples())
            .merge(O.Windows[E.Pos]);
        break;
      }
    }
  }

  /// Visits every metric in insertion order. \p CounterFn receives
  /// (name, value) — for counters and gauges alike; \p HistFn receives
  /// (name, histogram) — a windowed histogram visits as its snapshot.
  template <typename CounterFn, typename HistFn>
  void forEach(CounterFn &&OnCounter, HistFn &&OnHist) const {
    for (const std::string *Name : Order) {
      const Entry &E = Index.find(*Name)->second;
      switch (E.Kind) {
      case EntryKind::Counter:
      case EntryKind::Gauge:
        OnCounter(*Name, Counters[E.Pos]);
        break;
      case EntryKind::Histogram:
        OnHist(*Name, Histograms[E.Pos]);
        break;
      case EntryKind::Windowed: {
        Histogram S = Windows[E.Pos].snapshot();
        OnHist(*Name, S);
        break;
      }
      }
    }
  }

  size_t size() const { return Order.size(); }

  /// Renders the registry as one JSON object: counters and gauges as
  /// numbers, histograms (windowed or not) as their summary objects.
  void writeJson(JsonWriter &W) const {
    W.beginObject();
    forEach([&](const std::string &N, uint64_t V) { W.key(N).value(V); },
            [&](const std::string &N, const Histogram &H) {
              W.key(N);
              H.writeJson(W);
            });
    W.endObject();
  }

  /// A registry name's Prometheus identity: the sanitized base metric
  /// name (dots become underscores, anything outside [a-zA-Z0-9_:] too)
  /// and the label pairs from a `{...}` suffix, braces stripped.
  struct PromSeries {
    std::string Metric; ///< e.g. "cpsflow_serve_latency_us"
    std::string Labels; ///< e.g. "analyzer=\"direct\"" or empty
  };

  static PromSeries prometheusSeries(std::string_view Name,
                                     std::string_view Prefix) {
    PromSeries S;
    size_t Brace = Name.find('{');
    std::string_view Base = Name.substr(0, Brace);
    if (Brace != std::string_view::npos) {
      std::string_view Rest = Name.substr(Brace + 1);
      if (!Rest.empty() && Rest.back() == '}')
        Rest.remove_suffix(1);
      S.Labels = std::string(Rest);
    }
    S.Metric.reserve(Prefix.size() + Base.size());
    S.Metric = std::string(Prefix);
    for (char C : Base) {
      bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '_' || C == ':';
      S.Metric.push_back(Ok ? C : '_');
    }
    if (!S.Metric.empty() && S.Metric[0] >= '0' && S.Metric[0] <= '9')
      S.Metric.insert(S.Metric.begin(), '_');
    return S;
  }

  /// Renders the registry in the Prometheus text exposition format
  /// (text/plain; version=0.0.4). Counters render as `counter`, gauges
  /// as `gauge`, histograms — windowed ones via their snapshot — as
  /// cumulative-bucket `histogram` families with log2 `le` edges.
  /// Series sharing a base metric (label variants) group under one
  /// `# TYPE` line, first-seen order; within a family, series keep
  /// insertion order. Deterministic for deterministic contents.
  void writePrometheus(std::ostream &Os,
                       std::string_view Prefix = "cpsflow_") const {
    struct Series {
      PromSeries Id;
      const Entry *E;
    };
    // Group label variants by base metric, preserving first-seen order.
    std::vector<std::pair<std::string, std::vector<Series>>> Families;
    for (const std::string *Name : Order) {
      const Entry &E = Index.find(*Name)->second;
      PromSeries Id = prometheusSeries(*Name, Prefix);
      auto Fam = std::find_if(Families.begin(), Families.end(),
                              [&](const auto &F) {
                                return F.first == Id.Metric;
                              });
      if (Fam == Families.end()) {
        Families.push_back({Id.Metric, {}});
        Fam = Families.end() - 1;
      }
      Fam->second.push_back(Series{std::move(Id), &E});
    }

    auto LabelSet = [](const std::string &Labels,
                       const std::string &Extra) -> std::string {
      if (Labels.empty() && Extra.empty())
        return "";
      if (Labels.empty())
        return "{" + Extra + "}";
      if (Extra.empty())
        return "{" + Labels + "}";
      return "{" + Labels + "," + Extra + "}";
    };

    for (const auto &[Metric, SeriesList] : Families) {
      EntryKind Kind = SeriesList.front().E->Kind;
      const char *Type = Kind == EntryKind::Counter  ? "counter"
                         : Kind == EntryKind::Gauge ? "gauge"
                                                    : "histogram";
      Os << "# TYPE " << Metric << ' ' << Type << '\n';
      for (const Series &S : SeriesList) {
        const Entry &E = *S.E;
        switch (E.Kind) {
        case EntryKind::Counter:
        case EntryKind::Gauge:
          Os << Metric << LabelSet(S.Id.Labels, "") << ' '
             << Counters[E.Pos] << '\n';
          break;
        case EntryKind::Histogram:
        case EntryKind::Windowed: {
          Histogram H = E.Kind == EntryKind::Histogram
                            ? Histograms[E.Pos]
                            : Windows[E.Pos].snapshot();
          // Cumulative buckets up to the highest occupied edge, then
          // +Inf — bounded output even though the scheme has 65 buckets.
          unsigned HighBucket = 0;
          for (unsigned I = 0; I < Histogram::NumBuckets; ++I)
            if (H.bucket(I))
              HighBucket = I;
          uint64_t Cum = 0;
          for (unsigned I = 0; I <= HighBucket && H.count(); ++I) {
            Cum += H.bucket(I);
            Os << Metric << "_bucket"
               << LabelSet(S.Id.Labels,
                           "le=\"" +
                               std::to_string(
                                   Histogram::bucketUpperEdge(I)) +
                               "\"")
               << ' ' << Cum << '\n';
          }
          Os << Metric << "_bucket" << LabelSet(S.Id.Labels, "le=\"+Inf\"")
             << ' ' << H.count() << '\n';
          Os << Metric << "_sum" << LabelSet(S.Id.Labels, "") << ' '
             << H.sum() << '\n';
          Os << Metric << "_count" << LabelSet(S.Id.Labels, "") << ' '
             << H.count() << '\n';
          break;
        }
        }
      }
    }
  }

private:
  enum class EntryKind : uint8_t { Counter, Gauge, Histogram, Windowed };
  struct Entry {
    EntryKind Kind;
    size_t Pos;
  };

  uint64_t &counterRef(std::string_view Name) {
    auto [It, Inserted] = Index.try_emplace(std::string(Name));
    if (Inserted) {
      Counters.push_back(0);
      It->second = {EntryKind::Counter, Counters.size() - 1};
      Order.push_back(&It->first);
    }
    assert(It->second.Kind == EntryKind::Counter &&
           "metric name already used as a histogram");
    return Counters[It->second.Pos];
  }

  std::unordered_map<std::string, Entry> Index;
  std::deque<uint64_t> Counters;           // counters AND gauges; stable
  std::deque<Histogram> Histograms;        // stable references
  std::deque<WindowedHistogram> Windows;   // stable references
  std::vector<const std::string *> Order;
};

} // namespace support
} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_METRICS_H
