//===- gen/Workloads.h - Structured workload families -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized program families for the Section 6 cost and
/// computability experiments. Each returns an analysis::Witness (program,
/// CPS transform, initial abstract store, probe variable):
///
///  * conditionalChain(n) — n sequential unknown conditionals, each
///    refining an accumulator differently per branch. The direct analyzer
///    merges after every conditional (linear work); the CPS analyzers
///    duplicate the rest of the program per branch (2^n paths) —
///    Section 6.2's "overall exponential cost".
///  * callMergeChain(n) — the same blow-up driven by call sites with two
///    possible callees each (the Theorem 5.2b shape, scaled n times).
///    The CPS analyses keep every probe constant (5); the direct analysis
///    loses them all.
///  * closureTower(n) — n distinct single-callee applications; linear for
///    every analyzer, and every analyzer keeps the exact constant n.
///  * loopProbe(k) — `(let (x (loop)) ...)` followed by a test that only
///    the iterate x = k distinguishes: `if0 (sub1^k x) 7 9`. The direct
///    loop rule answers instantly and exactly; the CPS analyzers' bounded
///    join changes as the unroll bound crosses k — the Section 6.2
///    undecidability made visible.
///  * omega() — `(lambda (x) (x x))` applied to itself: concretely
///    divergent, exercising the Section 4.4 loop cut.
///  * counterLoop(n) — a countdown via self-application (terminating
///    recursion), exercising cuts and memoization together.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_GEN_WORKLOADS_H
#define CPSFLOW_GEN_WORKLOADS_H

#include "analysis/Witnesses.h"
#include "syntax/Ast.h"

namespace cpsflow {
namespace gen {

/// n unknown conditionals in sequence; free vars z0..z{n-1} bound to top.
analysis::Witness conditionalChain(Context &Ctx, uint32_t N);

/// n unknown conditionals whose two branches compute the *same* value, so
/// the duplicated per-path stores reconverge after every conditional.
/// With memoization the CPS analyzers collapse back to linear cost; with
/// the memo table disabled they stay exponential (bench E11's contrast
/// with conditionalChain, where stores genuinely differ and memoization
/// cannot help).
analysis::Witness convergingChain(Context &Ctx, uint32_t N);

/// n call sites with two possible constant-returning callees each.
analysis::Witness callMergeChain(Context &Ctx, uint32_t N);

/// n distinct single-callee applications computing the constant n.
analysis::Witness closureTower(Context &Ctx, uint32_t N);

/// `loop` followed by a probe only iterate K satisfies.
analysis::Witness loopProbe(Context &Ctx, uint32_t K);

/// (lambda (x) (x x)) applied to itself, in ANF.
analysis::Witness omega(Context &Ctx);

/// A self-application-encoded countdown from N.
analysis::Witness counterLoop(Context &Ctx, uint32_t N);

} // namespace gen
} // namespace cpsflow

#endif // CPSFLOW_GEN_WORKLOADS_H
