//===- tools/bench_diff.cpp - Compare two batch reports ---------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two batch/bench JSON reports (any schemaVersion 1-6: the
/// per-leg work counters it reads — goals, cacheHits, cuts, the schema-4
/// joins/callMerges loss counters, and the schema-5 summaryHits/
/// summaryMisses continuation-summary counters — are summed where present
/// and shown as "new" where the older schema lacks them; the schema-6
/// pushdown leg likewise reads as "new" against older baselines) and flags
/// regressions beyond a threshold. CI runs it
/// against the committed BENCH_throughput.json baseline, so the default
/// comparison uses only deterministic work counters; wall-clock deltas
/// are opt-in (--wall) because shared runners make timing noisy. For
/// loadgen reports (tools/loadgen), --p95 opts into comparing the
/// serve-path p95 latency ("loadgen".latencyUs.p95) the same way.
///
/// Per leg (direct/semantic/syntactic/dup/pushdown), counters are summed
/// over the
/// programs that appear ok in BOTH reports, so adding a corpus program
/// does not read as a regression. Exit codes: 0 clean, 1 regression
/// found, 2 usage/IO/parse error.
///
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"
#include "support/ParseNum.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace cpsflow;

namespace {

const char *const Legs[] = {"direct", "semantic", "syntactic", "dup",
                            "pushdown"};
// joins/callMerges only exist in schema-4 reports and the summary
// counters in schema-5; numberOr(C, 0) makes them read as 0 from older
// baselines, so a cross-schema diff shows them as "new" without tripping
// the regression exit code.
const char *const Counters[] = {"goals",      "cacheHits",  "cuts",
                                "joins",      "callMerges", "summaryHits",
                                "summaryMisses"};

// Counters where "more" is not worse: summaryHits growing means MORE
// reuse, so it is displayed for trend-watching but never flagged.
bool informational(const std::string &Counter) {
  return Counter == "summaryHits";
}

struct Report {
  /// Per-leg, per-counter sums over the shared ok programs.
  std::map<std::string, std::map<std::string, double>> Sums;
  /// Names of programs that analyzed ok.
  std::set<std::string> OkNames;
  double WallMs = 0;
  double P95Us = 0; ///< loadgen reports only (0 elsewhere)
};

[[noreturn]] void fail(const std::string &Message) {
  std::fprintf(stderr, "bench_diff: %s\n", Message.c_str());
  std::exit(2);
}

JsonValue loadReport(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    fail("cannot open '" + Path + "'");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Result<JsonValue> Doc = parseJson(Buf.str());
  if (!Doc)
    fail("'" + Path + "': " + Doc.error().Message);
  if (!Doc->isObject() || !Doc->find("programs"))
    fail("'" + Path + "' is not a batch report (no \"programs\")");
  return Doc.take();
}

/// Collects the ok-program names of \p Doc, and the per-leg counter sums
/// restricted to \p Shared (every name when null — first pass).
Report summarize(const JsonValue &Doc, const std::set<std::string> *Shared) {
  Report R;
  R.WallMs = Doc.numberOr("wallMs", 0);
  if (const JsonValue *LG = Doc.find("loadgen"))
    if (const JsonValue *L = LG->find("latencyUs"))
      R.P95Us = L->numberOr("p95", 0);
  for (const JsonValue &P : Doc.find("programs")->items()) {
    const JsonValue *Ok = P.find("ok");
    const JsonValue *Name = P.find("name");
    if (!Name || !Ok || !Ok->asBool())
      continue;
    R.OkNames.insert(Name->asString());
    if (Shared && !Shared->count(Name->asString()))
      continue;
    for (const char *Leg : Legs) {
      const JsonValue *L = P.find(Leg);
      if (!L)
        continue;
      for (const char *C : Counters)
        R.Sums[Leg][C] += L->numberOr(C, 0);
    }
  }
  return R;
}

std::string fmt(double V) {
  char Buf[32];
  if (V == std::floor(V) && std::fabs(V) < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Files;
  double ThresholdPct = 10.0;
  bool CompareWall = false;
  bool CompareP95 = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--threshold") {
      if (++I >= argc)
        fail("--threshold needs a value");
      Result<double> V = support::parseNonNegativeMs(argv[I]);
      if (!V)
        fail("--threshold: " + V.error().Message);
      ThresholdPct = *V;
    } else if (A == "--wall") {
      CompareWall = true;
    } else if (A == "--p95") {
      CompareP95 = true;
    } else if (A == "--help" || A == "-h") {
      std::printf("usage: bench_diff BASELINE.json CURRENT.json "
                  "[--threshold PCT] [--wall] [--p95]\n");
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      fail("unknown flag '" + A + "'");
    } else {
      Files.push_back(A);
    }
  }
  if (Files.size() != 2)
    fail("expected exactly two report files (try --help)");

  JsonValue BaseDoc = loadReport(Files[0]);
  JsonValue CurDoc = loadReport(Files[1]);

  // First pass finds each report's ok set; the comparison sums run only
  // over the intersection.
  std::set<std::string> BaseOk = summarize(BaseDoc, nullptr).OkNames;
  std::set<std::string> CurOk = summarize(CurDoc, nullptr).OkNames;
  std::set<std::string> Shared;
  for (const std::string &N : BaseOk)
    if (CurOk.count(N))
      Shared.insert(N);
  Report Base = summarize(BaseDoc, &Shared);
  Report Cur = summarize(CurDoc, &Shared);
  if (Shared.empty())
    fail("the reports share no ok programs — nothing to compare");
  if (Base.OkNames != Cur.OkNames)
    std::printf("note: program sets differ; comparing the %zu shared ok "
                "programs\n",
                Shared.size());

  std::printf("%-10s %-10s %14s %14s %9s  %s\n", "leg", "counter",
              "baseline", "current", "delta", "status");
  int Regressions = 0;
  auto row = [&](const std::string &Leg, const std::string &Counter,
                 double B, double C) {
    // "More" is the regression direction for every flagged counter:
    // goals/cuts are effort, for a fixed corpus a cacheHits increase
    // means more total probes, and a joins/callMerges jump means the
    // analyzers are losing precision at more sites. Informational
    // counters (summaryHits) are shown but never flagged.
    std::string Delta = "n/a", Status = "ok";
    if (B > 0) {
      double Pct = (C - B) / B * 100.0;
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%+.1f%%", Pct);
      Delta = Buf;
      if (informational(Counter)) {
        Status = "info";
      } else if (Pct > ThresholdPct) {
        Status = "REGRESSION";
        ++Regressions;
      } else if (Pct < -ThresholdPct) {
        Status = "improved";
      }
    } else if (C > 0) {
      Status = "new";
    }
    std::printf("%-10s %-10s %14s %14s %9s  %s\n", Leg.c_str(),
                Counter.c_str(), fmt(B).c_str(), fmt(C).c_str(),
                Delta.c_str(), Status.c_str());
  };
  for (const char *Leg : Legs)
    for (const char *C : Counters)
      row(Leg, C, Base.Sums[Leg][C], Cur.Sums[Leg][C]);
  if (CompareWall)
    row("total", "wallMs", Base.WallMs, Cur.WallMs);
  if (CompareP95)
    row("serve", "p95Us", Base.P95Us, Cur.P95Us);

  if (Regressions) {
    std::printf("%d regression(s) beyond %.1f%%\n", Regressions,
                ThresholdPct);
    return 1;
  }
  std::printf("no regressions beyond %.1f%%\n", ThresholdPct);
  return 0;
}
