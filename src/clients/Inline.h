//===- clients/Inline.h - Heuristic inlining client -------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing sentence: "a more practical alternative is to
/// combine heuristic in-lining with a direct-style analysis." This client
/// is that alternative: a source-to-source inliner that replaces calls to
/// let-bound lambdas by (renamed) copies of their bodies, after which the
/// plain Figure 4 analyzer sees one copy of each callee *per call site* —
/// exactly the per-path information the CPS analyses buy with duplication,
/// but paid once in program size rather than per analysis path.
///
/// Heuristics: inline a call `(f v)` when `f` is let-bound directly to a
/// lambda that is never used outside operator position (so the binding
/// can't escape), the lambda's body is at most MaxBodyNodes nodes, and the
/// total growth stays within MaxGrowth. Self-recursive lambdas (via
/// self-application) are naturally excluded because their recursion goes
/// through a variable argument, not the binding itself; a fuel bound
/// guarantees termination regardless.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_CLIENTS_INLINE_H
#define CPSFLOW_CLIENTS_INLINE_H

#include "syntax/Ast.h"

namespace cpsflow {
namespace clients {

/// Inliner knobs.
struct InlineOptions {
  /// Only lambdas whose body has at most this many nodes are inlined.
  size_t MaxBodyNodes = 150;
  /// Stop when the program has grown past MaxGrowth times its input size.
  double MaxGrowth = 8.0;
  /// Maximum inlining passes (each pass may expose new opportunities).
  uint32_t MaxPasses = 4;
};

/// Result of an inlining run.
struct InlineResult {
  /// The inlined program, re-normalized to ANF with unique binders.
  const syntax::Term *Inlined = nullptr;
  /// Call sites replaced by callee bodies.
  size_t InlinedCalls = 0;
  /// Passes actually executed.
  uint32_t Passes = 0;
};

/// Inlines \p Anf (A-normal form, unique binders) under \p Opts.
InlineResult inlineCalls(Context &Ctx, const syntax::Term *Anf,
                         InlineOptions Opts = InlineOptions());

} // namespace clients
} // namespace cpsflow

#endif // CPSFLOW_CLIENTS_INLINE_H
