file(REMOVE_RECURSE
  "libcpsflow_clients.a"
)
