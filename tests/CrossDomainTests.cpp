//===- tests/CrossDomainTests.cpp - Witnesses across domains ----*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theorem witnesses swept across every numeric domain: the ordering
/// theorems are domain-generic, so each domain must satisfy them (the
/// *strictness* of the gaps is domain-specific — e.g. the unit domain
/// cannot distinguish the Theorem 5.2 constants, so its gap closes).
/// Also checks the sample programs shipped for the CLI.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Compare.h"
#include "analysis/DirectAnalyzer.h"
#include "analysis/PushdownAnalyzer.h"
#include "analysis/SemanticCpsAnalyzer.h"
#include "analysis/SyntacticCpsAnalyzer.h"
#include "analysis/Witnesses.h"
#include "anf/Anf.h"
#include "interp/Direct.h"
#include "syntax/Sugar.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace cpsflow;
using namespace cpsflow::analysis;

namespace {

template <typename D> void checkWitnessOrdering() {
  Context Ctx;
  for (Witness (*Make)(Context &) : {theorem51, theorem52a, theorem52b}) {
    Witness W = Make(Ctx);
    auto AD = DirectAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W)).run();
    auto AS =
        SemanticCpsAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W)).run();
    auto AC =
        SyntacticCpsAnalyzer<D>(Ctx, W.Cps, cpsBindings<D>(W)).run();
    auto AP = PushdownAnalyzer<D>(Ctx, W.Anf, directBindings<D>(W)).run();

    // Theorem 5.4 (ordering half) holds for every domain.
    Comparison C54 =
        compareDirectWorld<D>(Ctx, AS, AD, W.InterestingVars);
    EXPECT_TRUE(C54.Overall == PrecisionOrder::Equal ||
                C54.Overall == PrecisionOrder::LeftMorePrecise)
        << D::Name << " " << W.Name << ": " << str(C54.Overall);

    // Theorem 5.5 (cut-free witnesses except 5.1's syntactic side; the
    // value half must hold regardless).
    Comparison C55 = compareWithSyntactic<D>(Ctx, AS, AC, W.Cps,
                                             W.InterestingVars);
    EXPECT_TRUE(C55.OnValue == PrecisionOrder::Equal ||
                C55.OnValue == PrecisionOrder::LeftMorePrecise)
        << D::Name << " " << W.Name << ": " << str(C55.OnValue);

    // The pushdown analysis closes the 1994 incomparability from above:
    // it is never less precise than either side, in any domain, on the
    // very witnesses that separate the two sides from each other.
    Comparison CPD =
        compareDirectWorld<D>(Ctx, AP, AD, W.InterestingVars);
    EXPECT_TRUE(CPD.Overall == PrecisionOrder::Equal ||
                CPD.Overall == PrecisionOrder::LeftMorePrecise)
        << D::Name << " " << W.Name << " pushdown vs direct: "
        << str(CPD.Overall);
    Comparison CPC = compareWithSyntactic<D>(Ctx, AP, AC, W.Cps,
                                             W.InterestingVars);
    EXPECT_TRUE(CPC.Overall == PrecisionOrder::Equal ||
                CPC.Overall == PrecisionOrder::LeftMorePrecise)
        << D::Name << " " << W.Name << " pushdown vs syntactic: "
        << str(CPC.Overall);
  }
}

TEST(CrossDomain, WitnessOrderingConstant) {
  checkWitnessOrdering<domain::ConstantDomain>();
}
TEST(CrossDomain, WitnessOrderingUnit) {
  checkWitnessOrdering<domain::UnitDomain>();
}
TEST(CrossDomain, WitnessOrderingSign) {
  checkWitnessOrdering<domain::SignDomain>();
}
TEST(CrossDomain, WitnessOrderingParity) {
  checkWitnessOrdering<domain::ParityDomain>();
}
TEST(CrossDomain, WitnessOrderingInterval) {
  checkWitnessOrdering<domain::IntervalDomain>();
}

TEST(CrossDomain, IntervalSharpensTheorem52aGap) {
  // Under intervals, the direct analysis keeps a range where constants
  // degrade to T: a1 in [0,1], a2 in [2,4]; the CPS analyses still pin
  // a2 = [3,3].
  using ID = domain::IntervalDomain;
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto AD = DirectAnalyzer<ID>(Ctx, W.Anf, directBindings<ID>(W)).run();
  auto AS =
      SemanticCpsAnalyzer<ID>(Ctx, W.Anf, directBindings<ID>(W)).run();
  EXPECT_EQ(ID::str(AD.valueOf(Ctx.intern("a1")).Num), "[0,1]");
  EXPECT_EQ(ID::str(AD.valueOf(Ctx.intern("a2")).Num), "[2,4]");
  EXPECT_EQ(ID::str(AS.valueOf(Ctx.intern("a2")).Num), "[3,3]");
}

TEST(CrossDomain, ParityCannotExploitTheorem52aDuplication) {
  // Parity cannot prove "even implies nonzero", so on the a1 = 0 path the
  // second conditional still explores its (spurious) else branch, whose
  // result is even — the per-path duplication buys nothing here and both
  // analyses meet at T. The Theorem 5.2 gap is a property of the *domain's*
  // ability to refine branch conditions, not of duplication alone.
  using PD = domain::ParityDomain;
  Context Ctx;
  Witness W = theorem52a(Ctx);
  auto AD = DirectAnalyzer<PD>(Ctx, W.Anf, directBindings<PD>(W)).run();
  auto AS =
      SemanticCpsAnalyzer<PD>(Ctx, W.Anf, directBindings<PD>(W)).run();
  EXPECT_EQ(PD::str(AD.valueOf(Ctx.intern("a2")).Num), "T");
  EXPECT_EQ(PD::str(AS.valueOf(Ctx.intern("a2")).Num), "T");
}

//===----------------------------------------------------------------------===//
// The shipped sample programs behave as documented
//===----------------------------------------------------------------------===//

int64_t runSample(const char *Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Context Ctx;
  Result<const syntax::Term *> T =
      syntax::parseSugaredProgram(Ctx, Buf.str());
  EXPECT_TRUE(T.hasValue()) << (T.hasValue() ? "" : T.error().str());
  const syntax::Term *Anf = anf::normalizeProgram(Ctx, *T);
  interp::RunLimits Limits;
  Limits.MaxSteps = 1u << 22;
  interp::DirectInterp I(Limits);
  interp::RunResult R = I.run(Anf);
  EXPECT_TRUE(R.ok()) << Path << ": " << R.Message;
  return R.Value.isNum() ? R.Value.Num : INT64_MIN;
}

TEST(SamplePrograms, ArithmeticComputes25) {
  EXPECT_EQ(runSample(CPSFLOW_SOURCE_DIR "/examples/programs/arithmetic.a"),
            25);
}

TEST(SamplePrograms, ChurchPairsCompute11) {
  EXPECT_EQ(runSample(CPSFLOW_SOURCE_DIR "/examples/programs/church.a"),
            11);
}

TEST(SamplePrograms, ListSumComputes10) {
  EXPECT_EQ(runSample(CPSFLOW_SOURCE_DIR "/examples/programs/list_sum.a"),
            10);
}

} // namespace
