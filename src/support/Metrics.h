//===- support/Metrics.h - Counters and histograms --------------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small metrics layer for the analyzers: named counters and
/// log2-bucketed histograms collected into a per-run MetricsRegistry.
///
/// The paper's Section 6 argument is quantitative — duplication cost, cut
/// frequency, loop-join behaviour — so the analyzers expose more than a
/// final answer: goal counts, cache behaviour, interner footprint, and
/// the *distributions* behind the scalars (goal depth, store width).
/// CFA2 and the pushdown-CFA line of work lean on exactly this kind of
/// instrumentation (visit counts, frontier sizes, per-benchmark tables)
/// to compare analyses; this header is our equivalent.
///
/// Design constraints:
///
///  * Zero overhead when disabled. The analyzers hold a
///    `MetricsRegistry *` that defaults to null; the per-goal hook is a
///    single predicted-false pointer test.
///  * Deterministic. Iteration order is insertion order, histogram
///    buckets are fixed powers of two, and quantiles are bucket upper
///    bounds — two runs that do the same work render byte-identical
///    metrics (wall-clock counters are the caller's to include or omit).
///  * Allocation-light. Counter/histogram lookups by name are amortized
///    O(1) (hashed index over a stable deque).
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_METRICS_H
#define CPSFLOW_SUPPORT_METRICS_H

#include "support/Json.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <sstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cpsflow {
namespace support {

/// A log2-bucketed histogram of uint64 samples. Bucket i counts samples
/// whose bit width is i, i.e. bucket 0 holds the value 0, bucket i>0
/// holds [2^(i-1), 2^i). Exact count/sum/min/max ride along so the
/// summary is precise even though the shape is bucketed.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  void record(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++N;
    Sum += V;
    Lo = N == 1 ? V : std::min(Lo, V);
    Hi = std::max(Hi, V);
  }

  void merge(const Histogram &O) {
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
    if (O.N) {
      Lo = N == 0 ? O.Lo : std::min(Lo, O.Lo);
      Hi = std::max(Hi, O.Hi);
    }
    N += O.N;
    Sum += O.Sum;
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return N ? Lo : 0; }
  uint64_t max() const { return Hi; }
  uint64_t bucket(unsigned I) const { return Buckets[I]; }

  /// An upper bound for the \p Q quantile (0 < Q <= 1): the inclusive
  /// upper edge of the bucket holding the ceil(Q*N)-th smallest sample.
  /// Deterministic by construction; max() tightens the last bucket.
  uint64_t quantileBound(double Q) const {
    if (N == 0)
      return 0;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(N));
    if (Rank == 0)
      Rank = 1;
    if (Rank > N)
      Rank = N;
    uint64_t Seen = 0;
    for (unsigned I = 0; I < NumBuckets; ++I) {
      Seen += Buckets[I];
      if (Seen >= Rank)
        return std::min(upperEdge(I), Hi);
    }
    return Hi;
  }

  /// "n=12 sum=340 p50<=16 p95<=64 max=57".
  std::string str() const {
    std::ostringstream O;
    O << "n=" << N << " sum=" << Sum << " p50<=" << quantileBound(0.5)
      << " p95<=" << quantileBound(0.95) << " max=" << Hi;
    return O.str();
  }

  /// {"n":..,"sum":..,"p50Bound":..,"p95Bound":..,"max":..}. The quantile
  /// keys are *Bound because they are log2-bucket upper bounds, not exact
  /// nearest-rank quantiles — the batch report's metrics section computes
  /// exact "p50"/"p95", and sharing names would invite cross-schema
  /// confusion in bench_diff (which reads both spellings).
  void writeJson(JsonWriter &W) const {
    W.beginObject();
    W.key("n").value(N);
    W.key("sum").value(Sum);
    W.key("p50Bound").value(quantileBound(0.5));
    W.key("p95Bound").value(quantileBound(0.95));
    W.key("max").value(Hi);
    W.endObject();
  }

private:
  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B;
  }

  static uint64_t upperEdge(unsigned I) {
    if (I == 0)
      return 0;
    if (I >= 64)
      return UINT64_MAX;
    return (uint64_t{1} << I) - 1;
  }

  uint64_t Buckets[NumBuckets] = {};
  uint64_t N = 0;
  uint64_t Sum = 0;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
};

/// Named counters and histograms for one analyzer run (or one aggregated
/// corpus). Names are interned on first use; iteration is insertion
/// order, so rendering is deterministic. Not thread-safe — one registry
/// per single-threaded run, merged afterwards.
class MetricsRegistry {
public:
  /// Adds \p Delta to counter \p Name (creating it at zero).
  void add(std::string_view Name, uint64_t Delta) {
    counterRef(Name) += Delta;
  }

  /// Sets counter \p Name to \p V.
  void set(std::string_view Name, uint64_t V) { counterRef(Name) = V; }

  /// Raises counter \p Name to at least \p V (peak semantics).
  void setMax(std::string_view Name, uint64_t V) {
    uint64_t &C = counterRef(Name);
    C = std::max(C, V);
  }

  uint64_t counter(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    if (It == Index.end() || It->second.Kind != EntryKind::Counter)
      return 0;
    return Counters[It->second.Pos];
  }

  bool hasCounter(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    return It != Index.end() && It->second.Kind == EntryKind::Counter;
  }

  /// The histogram \p Name (creating it empty). The reference is stable
  /// for the registry's lifetime. A name is a counter or a histogram,
  /// never both.
  Histogram &histogram(std::string_view Name) {
    auto [It, Inserted] = Index.try_emplace(std::string(Name));
    if (Inserted) {
      Histograms.emplace_back();
      It->second = {EntryKind::Histogram, Histograms.size() - 1};
      Order.push_back(&It->first);
    }
    assert(It->second.Kind == EntryKind::Histogram &&
           "metric name already used as a counter");
    return Histograms[It->second.Pos];
  }

  const Histogram *findHistogram(std::string_view Name) const {
    auto It = Index.find(std::string(Name));
    if (It == Index.end() || It->second.Kind != EntryKind::Histogram)
      return nullptr;
    return &Histograms[It->second.Pos];
  }

  /// Merges \p O into this registry: counters add, histograms merge.
  /// Names absent here are created at their position in \p O 's order.
  void merge(const MetricsRegistry &O) {
    for (const std::string *Name : O.Order) {
      const Entry &E = O.Index.find(*Name)->second;
      if (E.Kind == EntryKind::Counter)
        add(*Name, O.Counters[E.Pos]);
      else
        histogram(*Name).merge(O.Histograms[E.Pos]);
    }
  }

  /// Visits every metric in insertion order. \p CounterFn receives
  /// (name, value); \p HistFn receives (name, histogram).
  template <typename CounterFn, typename HistFn>
  void forEach(CounterFn &&OnCounter, HistFn &&OnHist) const {
    for (const std::string *Name : Order) {
      const Entry &E = Index.find(*Name)->second;
      if (E.Kind == EntryKind::Counter)
        OnCounter(*Name, Counters[E.Pos]);
      else
        OnHist(*Name, Histograms[E.Pos]);
    }
  }

  size_t size() const { return Order.size(); }

  /// Renders the registry as one JSON object: counters as numbers,
  /// histograms as their summary objects.
  void writeJson(JsonWriter &W) const {
    W.beginObject();
    forEach([&](const std::string &N, uint64_t V) { W.key(N).value(V); },
            [&](const std::string &N, const Histogram &H) {
              W.key(N);
              H.writeJson(W);
            });
    W.endObject();
  }

private:
  enum class EntryKind : uint8_t { Counter, Histogram };
  struct Entry {
    EntryKind Kind;
    size_t Pos;
  };

  uint64_t &counterRef(std::string_view Name) {
    auto [It, Inserted] = Index.try_emplace(std::string(Name));
    if (Inserted) {
      Counters.push_back(0);
      It->second = {EntryKind::Counter, Counters.size() - 1};
      Order.push_back(&It->first);
    }
    assert(It->second.Kind == EntryKind::Counter &&
           "metric name already used as a histogram");
    return Counters[It->second.Pos];
  }

  std::unordered_map<std::string, Entry> Index;
  std::deque<uint64_t> Counters;     // stable references
  std::deque<Histogram> Histograms;  // stable references
  std::vector<const std::string *> Order;
};

} // namespace support
} // namespace cpsflow

#endif // CPSFLOW_SUPPORT_METRICS_H
