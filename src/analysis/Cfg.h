//===- analysis/Cfg.h - Control-flow-graph extraction -----------*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow information accumulated during an analysis run. The paper
/// stresses that all three analyzers "compute the control flow graph of
/// the source program", which is why its precision results carry over to
/// a large class of data flow analyses. These records are that graph:
///
///  * per application site, the set of abstract closures applied there;
///  * per conditional, which branches were found feasible;
///  * (CPS analyses only) per return point `(k W)`, the set of abstract
///    continuations invoked — more than one continuation at a return is
///    precisely Section 6.1's *false return*.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_ANALYSIS_CFG_H
#define CPSFLOW_ANALYSIS_CFG_H

#include "cps/CpsAst.h"
#include "domain/AbsValue.h"
#include "syntax/Ast.h"

#include <map>

namespace cpsflow {
namespace analysis {

/// Feasible branches of one if0.
struct BranchInfo {
  bool ThenFeasible = false;
  bool ElseFeasible = false;
};

/// Control-flow graph extracted by the direct or semantic-CPS analyzer.
/// Keys are AST nodes; maps are ordered by node id for stable iteration.
struct DirectCfg {
  struct NodeIdLess {
    template <typename T> bool operator()(const T *A, const T *B) const {
      return A->id() < B->id();
    }
  };

  /// Call site -> abstract closures applied there.
  std::map<const syntax::AppTerm *, domain::CloSet, NodeIdLess> Callees;
  /// Conditional -> feasible branches.
  std::map<const syntax::If0Term *, BranchInfo, NodeIdLess> Branches;
};

/// Control-flow graph extracted by the syntactic-CPS analyzer.
struct CpsCfg {
  struct NodeIdLess {
    template <typename T> bool operator()(const T *A, const T *B) const {
      return A->id() < B->id();
    }
  };

  /// Call site -> abstract closures applied there.
  std::map<const cps::CpsCall *, domain::CpsCloSet, NodeIdLess> Callees;
  /// Conditional -> feasible branches.
  std::map<const cps::CpsIf *, BranchInfo, NodeIdLess> Branches;
  /// Return point (k W) -> abstract continuations invoked. A set with
  /// more than one element is a false return (Section 6.1).
  std::map<const cps::CpsRet *, domain::KontSet, NodeIdLess> Returns;
};

} // namespace analysis
} // namespace cpsflow

#endif // CPSFLOW_ANALYSIS_CFG_H
