//===- tests/InterruptTests.cpp - Cooperative interrupt paths ---*- C++ -*-===//
//
// Part of cpsflow. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIGINT/SIGTERM cooperative-cancellation contract behind
/// `cpsflow batch` and `cpsflow fuzz`: an interrupt token firing makes
/// in-flight analyses degrade through the governor (sound, Section 4.4),
/// stops the driver at the next boundary, and still yields a complete,
/// valid JSON report marked "interrupted": true — never a torn document.
/// The CLI signal handlers only set this token; everything observable is
/// library behavior, so it is tested here without real signals.
///
//===----------------------------------------------------------------------===//

#include "clients/Batch.h"
#include "fuzz/Campaign.h"
#include "support/JsonParse.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

using namespace cpsflow;
namespace fs = std::filesystem;

namespace {

std::shared_ptr<support::CancelToken> firedToken() {
  auto Tok = std::make_shared<support::CancelToken>();
  Tok->cancel();
  return Tok;
}

// The governor-level half of the contract (a fired token trips every
// analyzer to a sound Cancelled degrade) is covered by
// GovernorTests.PreCancelledTokenTripsImmediately; these tests cover the
// driver/report half the CLI signal handlers rely on.

class InterruptBatchTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::temp_directory_path() /
          ("cpsflow-interrupt-" +
           std::to_string(
               ::testing::UnitTest::GetInstance()->random_seed()) +
           "-" + ::testing::UnitTest::GetInstance()
                     ->current_test_info()
                     ->name());
    fs::remove_all(Dir);
    fs::create_directories(Dir);
    for (const char *Name : {"a.scm", "b.scm"}) {
      std::ofstream Out(Dir / Name);
      Out << "(let (x 2) (+ x 3))\n";
      Files.push_back((Dir / Name).string());
    }
  }
  void TearDown() override { fs::remove_all(Dir); }

  fs::path Dir;
  std::vector<std::string> Files;
};

TEST_F(InterruptBatchTest, PreCancelledBatchFlushesAValidInterruptedReport) {
  clients::BatchOptions BOpts;
  BOpts.Interrupt = firedToken();
  BOpts.IncludeTiming = false;
  clients::BatchResult R = clients::runBatchFiles(Files, BOpts);

  EXPECT_TRUE(R.Interrupted);
  ASSERT_EQ(R.Programs.size(), Files.size());
  for (const clients::BatchProgramResult &P : R.Programs) {
    EXPECT_FALSE(P.Ok);
    EXPECT_NE(P.Error.find("interrupted"), std::string::npos) << P.Error;
  }

  // The flushed report is complete, parseable JSON carrying the marker.
  std::string Json = clients::batchJson(R, BOpts);
  Result<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.hasValue()) << Json;
  const JsonValue *Flag = Doc->find("interrupted");
  ASSERT_NE(Flag, nullptr);
  EXPECT_TRUE(Flag->asBool());
  ASSERT_NE(Doc->find("programs"), nullptr);
  EXPECT_EQ(Doc->find("programs")->items().size(), Files.size());
}

TEST_F(InterruptBatchTest, UninterruptedReportCarriesNoMarker) {
  clients::BatchOptions BOpts;
  BOpts.Interrupt = std::make_shared<support::CancelToken>(); // never fires
  BOpts.IncludeTiming = false;
  clients::BatchResult R = clients::runBatchFiles(Files, BOpts);
  EXPECT_FALSE(R.Interrupted);
  std::string Json = clients::batchJson(R, BOpts);
  Result<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_EQ(Doc->find("interrupted"), nullptr)
      << "the marker is only emitted on interrupted runs, so untouched "
         "reports stay byte-identical to pre-interrupt builds";
}

TEST(InterruptFuzz, PreCancelledCampaignStopsAtTheFirstWaveBoundary) {
  fuzz::CampaignOptions COpts;
  COpts.Iterations = 8;
  COpts.MaxFindings = 4;
  COpts.IncludeTiming = false;
  COpts.Oracle.Interrupt = firedToken();
  fuzz::CampaignResult R = fuzz::runCampaign(COpts, {});

  EXPECT_TRUE(R.Interrupted);
  EXPECT_EQ(R.Iterations, 0u) << "a pre-fired token stops before any wave";

  std::string Json = fuzz::campaignJson(R, COpts);
  Result<JsonValue> Doc = parseJson(Json);
  ASSERT_TRUE(Doc.hasValue()) << Json;
  const JsonValue *Flag = Doc->find("interrupted");
  ASSERT_NE(Flag, nullptr);
  EXPECT_TRUE(Flag->asBool());
}

TEST(InterruptFuzz, QuietTokenLeavesTheCampaignAlone) {
  fuzz::CampaignOptions COpts;
  COpts.Iterations = 2;
  COpts.IncludeTiming = false;
  COpts.Oracle.Interrupt = std::make_shared<support::CancelToken>();
  fuzz::CampaignResult R = fuzz::runCampaign(COpts, {});
  EXPECT_FALSE(R.Interrupted);
  EXPECT_EQ(R.Iterations, 2u);
  Result<JsonValue> Doc = parseJson(fuzz::campaignJson(R, COpts));
  ASSERT_TRUE(Doc.hasValue());
  EXPECT_EQ(Doc->find("interrupted"), nullptr);
}

} // namespace
