//===- support/Symbol.h - Interned identifiers ------------------*- C++ -*-===//
//
// Part of cpsflow, a reproduction of Sabry & Felleisen, "Is
// Continuation-Passing Useful for Data Flow Analysis?" (PLDI 1994).
// Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers (variables of the object language A and of cps(A)).
///
/// The paper assumes that "all bound variables in a program are unique"
/// (Section 2); analyses key their abstract stores directly by variable.
/// Interning turns variable comparisons and store lookups into integer
/// operations and gives a single place to manufacture fresh names during
/// A-normalization and CPS transformation.
///
//===----------------------------------------------------------------------===//

#ifndef CPSFLOW_SUPPORT_SYMBOL_H
#define CPSFLOW_SUPPORT_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cpsflow {

/// A lightweight handle to an interned string.
///
/// Symbols are value types; two symbols drawn from the same SymbolTable
/// compare equal exactly when they spell the same identifier. The reserved
/// id 0 denotes the invalid symbol.
class Symbol {
public:
  Symbol() : Id(0) {}

  /// \returns true if this symbol refers to an interned identifier.
  bool isValid() const { return Id != 0; }

  /// Raw interner index; exposed for hashing and dense maps.
  uint32_t rawId() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class SymbolTable;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  uint32_t Id;
};

/// Interner mapping identifier spellings to Symbols and back.
///
/// Also provides \ref fresh, which generates names that are guaranteed not
/// to collide with any identifier interned so far (used to give every
/// intermediate result a name during A-normalization, and to introduce the
/// continuation variables `k` of Definition 3.2).
class SymbolTable {
public:
  SymbolTable() {
    // Slot 0 is reserved for the invalid symbol.
    Spellings.push_back("<invalid>");
  }

  SymbolTable(const SymbolTable &) = delete;
  SymbolTable &operator=(const SymbolTable &) = delete;

  /// Interns \p Name, returning the canonical symbol for that spelling.
  Symbol intern(std::string_view Name) {
    auto It = Ids.find(std::string(Name));
    if (It != Ids.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Spellings.size());
    Spellings.emplace_back(Name);
    Ids.emplace(Spellings.back(), Id);
    return Symbol(Id);
  }

  /// \returns the spelling of \p S. \p S must be valid and owned by this
  /// table.
  std::string_view spelling(Symbol S) const {
    assert(S.isValid() && "querying the invalid symbol");
    assert(S.rawId() < Spellings.size() && "symbol from another table");
    return Spellings[S.rawId()];
  }

  /// Generates a symbol whose spelling starts with \p Stem and does not
  /// collide with any symbol interned so far.
  ///
  /// Fresh names have the shape `Stem%N`; `%` is not a legal identifier
  /// character in the surface syntax, so fresh names can never capture
  /// user-written variables.
  Symbol fresh(std::string_view Stem) {
    std::string Candidate;
    do {
      Candidate = std::string(Stem) + "%" + std::to_string(FreshCounter++);
    } while (Ids.count(Candidate));
    return intern(Candidate);
  }

  /// Number of interned symbols (excluding the invalid slot).
  size_t size() const { return Spellings.size() - 1; }

private:
  std::vector<std::string> Spellings;
  std::unordered_map<std::string, uint32_t> Ids;
  uint64_t FreshCounter = 0;
};

} // namespace cpsflow

namespace std {
template <> struct hash<cpsflow::Symbol> {
  size_t operator()(cpsflow::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.rawId());
  }
};
} // namespace std

#endif // CPSFLOW_SUPPORT_SYMBOL_H
